#include "io/matpower.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/status.h"

namespace phasorwatch::io {
namespace {

using grid::Branch;
using grid::Bus;
using grid::BusType;
using grid::Grid;

// One parsed matrix: rows of doubles.
using NumericMatrix = std::vector<std::vector<double>>;

// Strips %-comments and returns the content between "mpc.<name> = ["
// and the closing "];", or an empty string when absent.
Result<std::string> ExtractBlock(const std::string& contents,
                                 const std::string& name) {
  // Remove comments line by line first.
  std::string cleaned;
  cleaned.reserve(contents.size());
  std::istringstream lines(contents);
  std::string line;
  while (std::getline(lines, line)) {
    size_t comment = line.find('%');
    if (comment != std::string::npos) line.resize(comment);
    cleaned += line;
    cleaned += '\n';
  }

  std::string key = "mpc." + name;
  size_t at = cleaned.find(key);
  if (at == std::string::npos) {
    return Status::NotFound("matrix mpc." + name + " not present");
  }
  size_t open = cleaned.find('[', at);
  if (open == std::string::npos) {
    return Status::InvalidArgument("mpc." + name + " has no opening bracket");
  }
  size_t close = cleaned.find(']', open);
  if (close == std::string::npos) {
    return Status::InvalidArgument("mpc." + name + " has no closing bracket");
  }
  return cleaned.substr(open + 1, close - open - 1);
}

// Parses a matrix block: rows separated by ';' or newlines, entries by
// whitespace or commas.
Result<NumericMatrix> ParseMatrix(const std::string& block,
                                  const std::string& name) {
  NumericMatrix rows;
  std::string row_text;
  auto flush_row = [&]() -> Status {
    std::vector<double> row;
    std::istringstream entries(row_text);
    std::string token;
    while (entries >> token) {
      // Tolerate trailing commas inside rows.
      while (!token.empty() && token.back() == ',') token.pop_back();
      if (token.empty()) continue;
      char* end = nullptr;
      double value = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("mpc." + name +
                                       ": non-numeric token '" + token + "'");
      }
      row.push_back(value);
    }
    if (!row.empty()) rows.push_back(std::move(row));
    row_text.clear();
    return Status::OK();
  };

  for (char c : block) {
    if (c == ';' || c == '\n') {
      PW_RETURN_IF_ERROR(flush_row());
    } else if (c == ',') {
      row_text += ' ';
    } else {
      row_text += c;
    }
  }
  PW_RETURN_IF_ERROR(flush_row());
  if (rows.empty()) {
    return Status::InvalidArgument("mpc." + name + " is empty");
  }
  size_t cols = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != cols) {
      return Status::InvalidArgument("mpc." + name +
                                     " has ragged rows (expected " +
                                     std::to_string(cols) + " columns)");
    }
  }
  return rows;
}

double Col(const std::vector<double>& row, size_t idx, double fallback = 0.0) {
  return idx < row.size() ? row[idx] : fallback;
}

}  // namespace

Result<Grid> ParseMatpowerCase(const std::string& contents,
                               const std::string& case_name) {
  // baseMVA: "mpc.baseMVA = 100;"
  double base_mva = 100.0;
  {
    size_t at = contents.find("mpc.baseMVA");
    if (at != std::string::npos) {
      size_t eq = contents.find('=', at);
      if (eq != std::string::npos) {
        base_mva = std::strtod(contents.c_str() + eq + 1, nullptr);
        if (base_mva <= 0.0) {
          return Status::InvalidArgument("non-positive mpc.baseMVA");
        }
      }
    }
  }

  PW_ASSIGN_OR_RETURN(std::string bus_block, ExtractBlock(contents, "bus"));
  PW_ASSIGN_OR_RETURN(NumericMatrix bus_rows, ParseMatrix(bus_block, "bus"));
  PW_ASSIGN_OR_RETURN(std::string branch_block,
                      ExtractBlock(contents, "branch"));
  PW_ASSIGN_OR_RETURN(NumericMatrix branch_rows,
                      ParseMatrix(branch_block, "branch"));

  // gen is optional (a case with only loads would have none).
  NumericMatrix gen_rows;
  auto gen_block = ExtractBlock(contents, "gen");
  if (gen_block.ok()) {
    PW_ASSIGN_OR_RETURN(gen_rows, ParseMatrix(*gen_block, "gen"));
  }

  std::vector<Bus> buses;
  buses.reserve(bus_rows.size());
  for (const auto& row : bus_rows) {
    if (row.size() < 2) {
      return Status::InvalidArgument("bus row needs at least BUS_I and TYPE");
    }
    Bus bus;
    bus.id = static_cast<int>(std::lround(row[0]));
    int type = static_cast<int>(std::lround(row[1]));
    switch (type) {
      case 1:
        bus.type = BusType::kPQ;
        break;
      case 2:
        bus.type = BusType::kPV;
        break;
      case 3:
        bus.type = BusType::kSlack;
        break;
      default:
        return Status::InvalidArgument("bus " + std::to_string(bus.id) +
                                       " has unsupported type " +
                                       std::to_string(type));
    }
    bus.pd_mw = Col(row, 2);
    bus.qd_mvar = Col(row, 3);
    bus.gs_mw = Col(row, 4);
    bus.bs_mvar = Col(row, 5);
    bus.vm_setpoint = Col(row, 7, 1.0);
    bus.base_kv = Col(row, 9);
    buses.push_back(bus);
  }

  // Fold in-service generators into their buses (our model carries one
  // aggregate injection per bus).
  for (const auto& row : gen_rows) {
    if (row.size() < 2) {
      return Status::InvalidArgument("gen row needs at least GEN_BUS and PG");
    }
    int gen_bus = static_cast<int>(std::lround(row[0]));
    double status = Col(row, 7, 1.0);
    if (status == 0.0) continue;
    bool found = false;
    for (Bus& bus : buses) {
      if (bus.id != gen_bus) continue;
      found = true;
      bus.pg_mw += Col(row, 1);
      bus.qg_mvar += Col(row, 2);
      bus.qmax_mvar += Col(row, 3);
      bus.qmin_mvar += Col(row, 4);
      double vg = Col(row, 5, 0.0);
      if (vg > 0.0) bus.vm_setpoint = vg;
      break;
    }
    if (!found) {
      return Status::InvalidArgument("generator references unknown bus " +
                                     std::to_string(gen_bus));
    }
  }

  std::vector<Branch> branches;
  branches.reserve(branch_rows.size());
  for (const auto& row : branch_rows) {
    if (row.size() < 4) {
      return Status::InvalidArgument(
          "branch row needs at least F_BUS T_BUS R X");
    }
    Branch br;
    br.from_bus = static_cast<int>(std::lround(row[0]));
    br.to_bus = static_cast<int>(std::lround(row[1]));
    br.r = row[2];
    br.x = row[3];
    br.b = Col(row, 4);
    br.tap = Col(row, 8);
    br.shift_deg = Col(row, 9);
    br.in_service = Col(row, 10, 1.0) != 0.0;
    branches.push_back(br);
  }

  return Grid::Create(case_name, std::move(buses), std::move(branches),
                      base_mva);
}

Result<Grid> LoadMatpowerCase(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open case file " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  // Derive the case name from the file name, sans directory/extension.
  std::string name = path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return ParseMatpowerCase(contents.str(), name);
}

std::string WriteMatpowerCase(const Grid& grid) {
  std::ostringstream out;
  char buffer[256];
  out << "function mpc = " << grid.name() << "\n";
  out << "% generated by phasorwatch\n";
  out << "mpc.version = '2';\n";
  std::snprintf(buffer, sizeof(buffer), "mpc.baseMVA = %g;\n\n",
                grid.base_mva());
  out << buffer;

  out << "%% bus data\n"
      << "%\tbus_i\ttype\tPd\tQd\tGs\tBs\tarea\tVm\tVa\tbaseKV\tzone\tVmax\tVmin\n"
      << "mpc.bus = [\n";
  for (const Bus& bus : grid.buses()) {
    int type = bus.type == BusType::kSlack ? 3
               : bus.type == BusType::kPV  ? 2
                                           : 1;
    std::snprintf(buffer, sizeof(buffer),
                  "\t%d\t%d\t%.12g\t%.12g\t%.12g\t%.12g\t1\t%.12g\t0\t%.12g\t1\t1.1\t0.9;\n",
                  bus.id, type, bus.pd_mw, bus.qd_mvar, bus.gs_mw,
                  bus.bs_mvar, bus.vm_setpoint, bus.base_kv);
    out << buffer;
  }
  out << "];\n\n";

  out << "%% generator data\n"
      << "%\tbus\tPg\tQg\tQmax\tQmin\tVg\tmBase\tstatus\tPmax\tPmin\n"
      << "mpc.gen = [\n";
  for (const Bus& bus : grid.buses()) {
    if (bus.type == BusType::kPQ) continue;
    double qmax = bus.HasQLimits() ? bus.qmax_mvar : 9999.0;
    double qmin = bus.HasQLimits() ? bus.qmin_mvar : -9999.0;
    std::snprintf(buffer, sizeof(buffer),
                  "\t%d\t%.12g\t%.12g\t%.12g\t%.12g\t%.12g\t%.12g\t1\t9999\t0;\n",
                  bus.id, bus.pg_mw, bus.qg_mvar, qmax, qmin,
                  bus.vm_setpoint, grid.base_mva());
    out << buffer;
  }
  out << "];\n\n";

  out << "%% branch data\n"
      << "%\tfbus\ttbus\tr\tx\tb\trateA\trateB\trateC\tratio\tangle\tstatus\n"
      << "mpc.branch = [\n";
  for (const Branch& br : grid.branches()) {
    std::snprintf(buffer, sizeof(buffer),
                  "\t%d\t%d\t%.10g\t%.10g\t%.10g\t0\t0\t0\t%.10g\t%.10g\t%d;\n",
                  br.from_bus, br.to_bus, br.r, br.x, br.b, br.tap,
                  br.shift_deg, br.in_service ? 1 : 0);
    out << buffer;
  }
  out << "];\n";
  return out.str();
}

Status SaveMatpowerCase(const Grid& grid, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  file << WriteMatpowerCase(grid);
  if (!file.good()) {
    return Status::Internal("write to " + path + " failed");
  }
  return Status::OK();
}

}  // namespace phasorwatch::io
