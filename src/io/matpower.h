#ifndef PHASORWATCH_IO_MATPOWER_H_
#define PHASORWATCH_IO_MATPOWER_H_

#include <string>

#include "common/check.h"
#include "common/status.h"
#include "grid/grid.h"

namespace phasorwatch::io {

/// Reader/writer for MATPOWER case files (the `.m` files with
/// `mpc.baseMVA`, `mpc.bus`, `mpc.gen`, and `mpc.branch` matrices) —
/// the de-facto interchange format for steady-state power-system test
/// cases. The parser accepts the common layout produced by MATPOWER's
/// `savecase`: matrix rows of whitespace-separated numbers terminated
/// by `;`, comments starting with `%`, and arbitrary content outside
/// the four matrices (which is ignored). Column meaning follows the
/// MATPOWER manual:
///   bus:    BUS_I TYPE PD QD GS BS AREA VM VA BASE_KV ZONE VMAX VMIN
///   gen:    GEN_BUS PG QG QMAX QMIN VG MBASE STATUS PMAX PMIN ...
///   branch: F_BUS T_BUS R X B RATE_A RATE_B RATE_C TAP SHIFT STATUS ...
/// Trailing columns beyond those used are ignored; missing optional
/// columns default to zero. Bus types: 1 = PQ, 2 = PV, 3 = slack.

/// Parses a case from file contents. Fails with kInvalidArgument on
/// malformed matrices and propagates Grid::Create's validation errors
/// (duplicate buses, missing slack, disconnected topology, ...).
PW_NODISCARD Result<grid::Grid> ParseMatpowerCase(
    const std::string& contents, const std::string& case_name = "case");

/// Reads and parses a case file from disk.
PW_NODISCARD Result<grid::Grid> LoadMatpowerCase(const std::string& path);

/// Serializes a grid back to MATPOWER format. Round-trips through
/// ParseMatpowerCase up to floating-point printing precision.
std::string WriteMatpowerCase(const grid::Grid& grid);

/// Writes the serialized case to disk.
PW_NODISCARD Status SaveMatpowerCase(const grid::Grid& grid,
                                     const std::string& path);

}  // namespace phasorwatch::io

#endif  // PHASORWATCH_IO_MATPOWER_H_
