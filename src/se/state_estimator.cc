#include "se/state_estimator.h"

#include <cmath>
#include <complex>
#include <string>

#include "common/check.h"
#include "common/status.h"
#include "common/workspace.h"
#include "linalg/complex_matrix.h"
#include "linalg/lu.h"
#include "linalg/views.h"

namespace phasorwatch::se {
namespace {

using grid::Branch;
using grid::Grid;
using linalg::Matrix;
using linalg::Vector;

constexpr double kDegToRad = M_PI / 180.0;

// Terminal admittances of one branch (same pi-model as the Ybus
// builder): I_from = yff * V_from + yft * V_to.
struct BranchAdmittance {
  std::complex<double> yff;
  std::complex<double> yft;
};

BranchAdmittance FromEndAdmittance(const Branch& br) {
  using C = std::complex<double>;
  C ys = 1.0 / C(br.r, br.x);
  C charging(0.0, br.b / 2.0);
  double tap = br.tap == 0.0 ? 1.0 : br.tap;
  C ratio = tap * std::exp(C(0.0, br.shift_deg * kDegToRad));
  BranchAdmittance out;
  out.yff = (ys + charging) / (tap * tap);
  out.yft = -ys / std::conj(ratio);
  return out;
}

// Adds the two rows (real and imaginary component) of a linear complex
// relation m = sum_k c_k * V_k to H, and the measured values to z/w.
struct RowBuilder {
  linalg::MutableMatrixView h;
  linalg::VectorView z;
  linalg::VectorView weight;
  size_t row = 0;
  size_t n = 0;

  void AddComplexTerm(size_t real_row, size_t bus,
                      std::complex<double> coeff) {
    // m_re += Re(c)Re(V) - Im(c)Im(V); m_im += Im(c)Re(V) + Re(c)Im(V).
    h(real_row, bus) += coeff.real();
    h(real_row, n + bus) += -coeff.imag();
    h(real_row + 1, bus) += coeff.imag();
    h(real_row + 1, n + bus) += coeff.real();
  }
};

}  // namespace

bool EstimationResult::ChiSquareTestPasses() const {
  if (redundancy == 0) return true;  // no consistency information
  // Wilson-Hilferty: chi2_k(q) ~ k (1 - 2/(9k) + z_q sqrt(2/(9k)))^3,
  // z_{0.975} = 1.96.
  double k = static_cast<double>(redundancy);
  double term = 1.0 - 2.0 / (9.0 * k) + 1.96 * std::sqrt(2.0 / (9.0 * k));
  double threshold = k * term * term * term;
  return weighted_residual_sq <= threshold;
}

LinearStateEstimator::LinearStateEstimator(const Grid& grid) : grid_(&grid) {
  linalg::ComplexMatrix ybus = grid.BuildAdmittanceMatrix();
  g_ = ybus.Real();
  b_ = ybus.Imag();
}

Result<EstimationResult> LinearStateEstimator::Estimate(
    const std::vector<PhasorMeasurement>& measurements) const {
  const size_t n = grid_->num_buses();
  const size_t state_dim = 2 * n;
  const size_t rows = 2 * measurements.size();
  if (rows < state_dim) {
    return Status::FailedPrecondition(
        "unobservable: fewer measurement rows than states");
  }

  // All estimator scratch comes from the per-thread arena: a repeated
  // Estimate loop (one call per PMU frame) reuses the same memory after
  // the first pass. The Frame rewinds on every exit path.
  Workspace& ws = Workspace::PerThread();
  Workspace::Frame scratch_frame(ws);
  linalg::MutableMatrixView h(ws.Alloc(rows * state_dim), rows, state_dim);
  linalg::VectorView z(ws.Alloc(rows), rows);
  linalg::VectorView weight(ws.Alloc(rows), rows);
  RowBuilder builder{h, z, weight, 0, n};

  for (const PhasorMeasurement& m : measurements) {
    if (m.sigma <= 0.0) {
      return Status::InvalidArgument("measurement sigma must be positive");
    }
    size_t row = builder.row;
    switch (m.kind) {
      case PhasorMeasurement::Kind::kBusVoltage: {
        if (m.index >= n) {
          return Status::InvalidArgument("voltage measurement at unknown bus");
        }
        builder.AddComplexTerm(row, m.index, {1.0, 0.0});
        break;
      }
      case PhasorMeasurement::Kind::kBranchCurrentFrom: {
        if (m.index >= grid_->num_branches()) {
          return Status::InvalidArgument(
              "current measurement at unknown branch");
        }
        const Branch& br = grid_->branches()[m.index];
        if (!br.in_service) {
          return Status::InvalidArgument(
              "current measurement on out-of-service branch");
        }
        PW_ASSIGN_OR_RETURN(size_t f, grid_->BusIndex(br.from_bus));
        PW_ASSIGN_OR_RETURN(size_t t, grid_->BusIndex(br.to_bus));
        BranchAdmittance adm = FromEndAdmittance(br);
        builder.AddComplexTerm(row, f, adm.yff);
        builder.AddComplexTerm(row, t, adm.yft);
        break;
      }
    }
    z[row] = m.real;
    z[row + 1] = m.imag;
    weight[row] = 1.0 / (m.sigma * m.sigma);
    weight[row + 1] = weight[row];
    builder.row += 2;
  }

  // Normal equations: (H^T W H) x = H^T W z. Scratch comes from the
  // per-thread workspace arena, not the heap.
  // PW_NO_ALLOC_BEGIN(weighted-least-squares solve)
  linalg::MutableMatrixView hw(ws.Alloc(rows * state_dim), rows, state_dim);
  linalg::CopyInto(h, hw);  // rows scaled by weight
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < state_dim; ++c) hw(r, c) *= weight[r];
  }
  linalg::MutableMatrixView gain(ws.Alloc(state_dim * state_dim), state_dim,
                                 state_dim);
  linalg::TransposedTimesInto(h, hw, gain);
  linalg::VectorView rhs(ws.Alloc(state_dim), state_dim);
  for (size_t c = 0; c < state_dim; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < rows; ++r) sum += hw(r, c) * z[r];
    rhs[c] = sum;
  }
  // The decomposition's packed storage is reused across calls on this
  // thread; Refactor is bit-identical to a fresh Factor.
  static thread_local linalg::LuDecomposition lu;
  Status factored = lu.Refactor(gain);
  if (!factored.ok()) {
    return Status::FailedPrecondition(
        "unobservable measurement configuration (singular gain matrix): " +
        factored.message());
  }
  linalg::VectorView x(ws.Alloc(state_dim), state_dim);
  PW_RETURN_IF_ERROR(lu.SolveInto(rhs, x));
  // PW_NO_ALLOC_END

  EstimationResult result;
  result.vm = Vector(n);
  result.va_rad = Vector(n);
  for (size_t i = 0; i < n; ++i) {
    std::complex<double> v(x[i], x[n + i]);
    result.vm[i] = std::abs(v);
    result.va_rad[i] = std::arg(v);
  }

  // Residual analysis.
  result.weighted_residual_sq = 0.0;
  result.worst_normalized_residual = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    double predicted = 0.0;
    for (size_t c = 0; c < state_dim; ++c) predicted += h(r, c) * x[c];
    double residual = z[r] - predicted;
    double normalized = residual * std::sqrt(weight[r]);
    result.weighted_residual_sq += normalized * normalized;
    if (std::fabs(normalized) > result.worst_normalized_residual) {
      result.worst_normalized_residual = std::fabs(normalized);
      result.worst_measurement = r / 2;  // back to measurement index
    }
  }
  result.redundancy = rows - state_dim;
  return result;
}

std::vector<PhasorMeasurement> LinearStateEstimator::VoltageMeasurements(
    const Vector& vm, const Vector& va_rad, const std::vector<bool>& missing,
    double sigma) {
  PW_CHECK_EQ(vm.size(), va_rad.size());
  std::vector<PhasorMeasurement> out;
  out.reserve(vm.size());
  for (size_t i = 0; i < vm.size(); ++i) {
    if (i < missing.size() && missing[i]) continue;
    PhasorMeasurement m;
    m.kind = PhasorMeasurement::Kind::kBusVoltage;
    m.index = i;
    m.real = vm[i] * std::cos(va_rad[i]);
    m.imag = vm[i] * std::sin(va_rad[i]);
    m.sigma = sigma;
    out.push_back(m);
  }
  return out;
}

}  // namespace phasorwatch::se
