#include "se/state_estimator.h"

#include <array>
#include <cmath>
#include <complex>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/status.h"
#include "common/workspace.h"
#include "linalg/lu.h"
#include "linalg/sparse.h"
#include "linalg/views.h"

namespace phasorwatch::se {
namespace {

using grid::Branch;
using grid::Grid;
using linalg::Matrix;
using linalg::Vector;

constexpr double kDegToRad = M_PI / 180.0;

// Terminal admittances of one branch (same pi-model as the Ybus
// builder): I_from = yff * V_from + yft * V_to.
struct BranchAdmittance {
  std::complex<double> yff;
  std::complex<double> yft;
};

BranchAdmittance FromEndAdmittance(const Branch& br) {
  using C = std::complex<double>;
  C ys = 1.0 / C(br.r, br.x);
  C charging(0.0, br.b / 2.0);
  double tap = br.tap == 0.0 ? 1.0 : br.tap;
  C ratio = tap * std::exp(C(0.0, br.shift_deg * kDegToRad));
  BranchAdmittance out;
  out.yff = (ys + charging) / (tap * tap);
  out.yft = -ys / std::conj(ratio);
  return out;
}

// Adds the two rows (real and imaginary component) of a linear complex
// relation m = sum_k c_k * V_k to H, and the measured values to z/w.
struct RowBuilder {
  linalg::MutableMatrixView h;
  linalg::VectorView z;
  linalg::VectorView weight;
  size_t row = 0;
  size_t n = 0;

  void AddComplexTerm(size_t real_row, size_t bus,
                      std::complex<double> coeff) {
    // m_re += Re(c)Re(V) - Im(c)Im(V); m_im += Im(c)Re(V) + Re(c)Im(V).
    h(real_row, bus) += coeff.real();
    h(real_row, n + bus) += -coeff.imag();
    h(real_row + 1, bus) += coeff.imag();
    h(real_row + 1, n + bus) += coeff.real();
  }
};

}  // namespace

bool EstimationResult::ChiSquareTestPasses() const {
  if (redundancy == 0) return true;  // no consistency information
  // Wilson-Hilferty: chi2_k(q) ~ k (1 - 2/(9k) + z_q sqrt(2/(9k)))^3,
  // z_{0.975} = 1.96.
  double k = static_cast<double>(redundancy);
  double term = 1.0 - 2.0 / (9.0 * k) + 1.96 * std::sqrt(2.0 / (9.0 * k));
  double threshold = k * term * term * term;
  return weighted_residual_sq <= threshold;
}

LinearStateEstimator::LinearStateEstimator(const Grid& grid,
                                           const EstimatorOptions& options)
    : grid_(&grid), options_(options) {}

Result<EstimationResult> LinearStateEstimator::Estimate(
    const std::vector<PhasorMeasurement>& measurements) const {
  if (options_.sparse_bus_threshold > 0 &&
      grid_->num_buses() >= options_.sparse_bus_threshold) {
    return EstimateSparse(measurements);
  }
  return EstimateDense(measurements);
}

Result<EstimationResult> LinearStateEstimator::EstimateDense(
    const std::vector<PhasorMeasurement>& measurements) const {
  const size_t n = grid_->num_buses();
  const size_t state_dim = 2 * n;
  const size_t rows = 2 * measurements.size();
  if (rows < state_dim) {
    return Status::FailedPrecondition(
        "unobservable: fewer measurement rows than states");
  }

  // All estimator scratch comes from the per-thread arena: a repeated
  // Estimate loop (one call per PMU frame) reuses the same memory after
  // the first pass. The Frame rewinds on every exit path.
  Workspace& ws = Workspace::PerThread();
  Workspace::Frame scratch_frame(ws);
  linalg::MutableMatrixView h(ws.Alloc(rows * state_dim), rows, state_dim);
  linalg::VectorView z(ws.Alloc(rows), rows);
  linalg::VectorView weight(ws.Alloc(rows), rows);
  RowBuilder builder{h, z, weight, 0, n};

  for (const PhasorMeasurement& m : measurements) {
    if (m.sigma <= 0.0) {
      return Status::InvalidArgument("measurement sigma must be positive");
    }
    size_t row = builder.row;
    switch (m.kind) {
      case PhasorMeasurement::Kind::kBusVoltage: {
        if (m.index >= n) {
          return Status::InvalidArgument("voltage measurement at unknown bus");
        }
        builder.AddComplexTerm(row, m.index, {1.0, 0.0});
        break;
      }
      case PhasorMeasurement::Kind::kBranchCurrentFrom: {
        if (m.index >= grid_->num_branches()) {
          return Status::InvalidArgument(
              "current measurement at unknown branch");
        }
        const Branch& br = grid_->branches()[m.index];
        if (!br.in_service) {
          return Status::InvalidArgument(
              "current measurement on out-of-service branch");
        }
        PW_ASSIGN_OR_RETURN(size_t f, grid_->BusIndex(br.from_bus));
        PW_ASSIGN_OR_RETURN(size_t t, grid_->BusIndex(br.to_bus));
        BranchAdmittance adm = FromEndAdmittance(br);
        builder.AddComplexTerm(row, f, adm.yff);
        builder.AddComplexTerm(row, t, adm.yft);
        break;
      }
    }
    z[row] = m.real;
    z[row + 1] = m.imag;
    weight[row] = 1.0 / (m.sigma * m.sigma);
    weight[row + 1] = weight[row];
    builder.row += 2;
  }

  // Normal equations: (H^T W H) x = H^T W z. Scratch comes from the
  // per-thread workspace arena, not the heap.
  // PW_NO_ALLOC_BEGIN(weighted-least-squares solve)
  linalg::MutableMatrixView hw(ws.Alloc(rows * state_dim), rows, state_dim);
  linalg::CopyInto(h, hw);  // rows scaled by weight
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < state_dim; ++c) hw(r, c) *= weight[r];
  }
  linalg::MutableMatrixView gain(ws.Alloc(state_dim * state_dim), state_dim,
                                 state_dim);
  linalg::TransposedTimesInto(h, hw, gain);
  linalg::VectorView rhs(ws.Alloc(state_dim), state_dim);
  for (size_t c = 0; c < state_dim; ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < rows; ++r) sum += hw(r, c) * z[r];
    rhs[c] = sum;
  }
  // The decomposition's packed storage is reused across calls on this
  // thread; Refactor is bit-identical to a fresh Factor.
  static thread_local linalg::LuDecomposition lu;
  Status factored = lu.Refactor(gain);
  if (!factored.ok()) {
    return Status::FailedPrecondition(
        "unobservable measurement configuration (singular gain matrix): " +
        factored.message());
  }
  linalg::VectorView x(ws.Alloc(state_dim), state_dim);
  PW_RETURN_IF_ERROR(lu.SolveInto(rhs, x));
  // PW_NO_ALLOC_END

  EstimationResult result;
  result.vm = Vector(n);
  result.va_rad = Vector(n);
  for (size_t i = 0; i < n; ++i) {
    std::complex<double> v(x[i], x[n + i]);
    result.vm[i] = std::abs(v);
    result.va_rad[i] = std::arg(v);
  }

  // Residual analysis.
  result.weighted_residual_sq = 0.0;
  result.worst_normalized_residual = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    double predicted = 0.0;
    for (size_t c = 0; c < state_dim; ++c) predicted += h(r, c) * x[c];
    double residual = z[r] - predicted;
    double normalized = residual * std::sqrt(weight[r]);
    result.weighted_residual_sq += normalized * normalized;
    if (std::fabs(normalized) > result.worst_normalized_residual) {
      result.worst_normalized_residual = std::fabs(normalized);
      result.worst_measurement = r / 2;  // back to measurement index
    }
  }
  result.redundancy = rows - state_dim;
  return result;
}

Result<EstimationResult> LinearStateEstimator::EstimateSparse(
    const std::vector<PhasorMeasurement>& measurements) const {
  const size_t n = grid_->num_buses();
  const size_t state_dim = 2 * n;
  const size_t rows = 2 * measurements.size();
  if (rows < state_dim) {
    return Status::FailedPrecondition(
        "unobservable: fewer measurement rows than states");
  }

  // Sparse H, built row-by-row: a voltage phasor touches 2 state
  // columns per component row and a branch current at most 4, so the
  // dense rows x 2n layout is overwhelmingly zeros at scale. Entries
  // for each measurement's real/imag rows are staged in fixed-size
  // buffers (AddComplexTerm interleaves the two rows) and flushed in
  // row order.
  std::vector<size_t> h_start(rows + 1, 0);
  std::vector<size_t> h_col;
  std::vector<double> h_val;
  h_col.reserve(8 * measurements.size());
  h_val.reserve(8 * measurements.size());
  Vector z(rows), weight(rows);

  size_t row = 0;
  std::array<std::pair<size_t, double>, 4> re_entries, im_entries;
  size_t re_count = 0, im_count = 0;
  // Same expansion as RowBuilder::AddComplexTerm, with exact-zero
  // coefficients skipped (they would only pad the gain pattern).
  auto add_term = [&](size_t bus, std::complex<double> coeff) {
    if (coeff.real() != 0.0) {
      re_entries[re_count++] = {bus, coeff.real()};
      im_entries[im_count++] = {n + bus, coeff.real()};
    }
    if (coeff.imag() != 0.0) {
      re_entries[re_count++] = {n + bus, -coeff.imag()};
      im_entries[im_count++] = {bus, coeff.imag()};
    }
  };
  for (const PhasorMeasurement& m : measurements) {
    if (m.sigma <= 0.0) {
      return Status::InvalidArgument("measurement sigma must be positive");
    }
    re_count = im_count = 0;
    switch (m.kind) {
      case PhasorMeasurement::Kind::kBusVoltage: {
        if (m.index >= n) {
          return Status::InvalidArgument("voltage measurement at unknown bus");
        }
        add_term(m.index, {1.0, 0.0});
        break;
      }
      case PhasorMeasurement::Kind::kBranchCurrentFrom: {
        if (m.index >= grid_->num_branches()) {
          return Status::InvalidArgument(
              "current measurement at unknown branch");
        }
        const Branch& br = grid_->branches()[m.index];
        if (!br.in_service) {
          return Status::InvalidArgument(
              "current measurement on out-of-service branch");
        }
        PW_ASSIGN_OR_RETURN(size_t f, grid_->BusIndex(br.from_bus));
        PW_ASSIGN_OR_RETURN(size_t t, grid_->BusIndex(br.to_bus));
        BranchAdmittance adm = FromEndAdmittance(br);
        add_term(f, adm.yff);
        add_term(t, adm.yft);
        break;
      }
    }
    for (size_t e = 0; e < re_count; ++e) {
      h_col.push_back(re_entries[e].first);
      h_val.push_back(re_entries[e].second);
    }
    h_start[row + 1] = h_col.size();
    for (size_t e = 0; e < im_count; ++e) {
      h_col.push_back(im_entries[e].first);
      h_val.push_back(im_entries[e].second);
    }
    h_start[row + 2] = h_col.size();
    z[row] = m.real;
    z[row + 1] = m.imag;
    weight[row] = 1.0 / (m.sigma * m.sigma);
    weight[row + 1] = weight[row];
    row += 2;
  }

  // Normal equations in CSR: the gain H^T W H is the sum of per-row
  // outer products, each at most 4x4, accumulated as triplets
  // (FromTriplets merges duplicates). A state column no measurement
  // touches yields a structurally empty gain row, which the sparse LU
  // reports as singular — the unobservable case.
  std::vector<linalg::Triplet> gain_trips;
  gain_trips.reserve(16 * measurements.size());
  Vector rhs(state_dim);
  for (size_t r = 0; r < rows; ++r) {
    const double w = weight[r];
    for (size_t s1 = h_start[r]; s1 < h_start[r + 1]; ++s1) {
      rhs[h_col[s1]] += h_val[s1] * w * z[r];
      for (size_t s2 = h_start[r]; s2 < h_start[r + 1]; ++s2) {
        gain_trips.push_back(
            {h_col[s1], h_col[s2], h_val[s1] * w * h_val[s2]});
      }
    }
  }
  linalg::CsrMatrix gain = linalg::CsrMatrix::FromTriplets(
      state_dim, state_dim, std::move(gain_trips));
  auto lu = linalg::SparseLu::Factor(gain);
  if (!lu.ok()) {
    return Status::FailedPrecondition(
        "unobservable measurement configuration (singular gain matrix): " +
        lu.status().message());
  }

  EstimationResult result;
  result.vm = Vector(n);
  result.va_rad = Vector(n);
  Vector x(state_dim);
  result.weighted_residual_sq = 0.0;
  result.worst_normalized_residual = 0.0;
  // PW_NO_ALLOC_BEGIN(sparse WLS solve and residual pass)
  PW_RETURN_IF_ERROR(lu->SolveInto(rhs, x));
  for (size_t i = 0; i < n; ++i) {
    std::complex<double> v(x[i], x[n + i]);
    result.vm[i] = std::abs(v);
    result.va_rad[i] = std::arg(v);
  }
  for (size_t r = 0; r < rows; ++r) {
    double predicted = 0.0;
    for (size_t s = h_start[r]; s < h_start[r + 1]; ++s) {
      predicted += h_val[s] * x[h_col[s]];
    }
    double residual = z[r] - predicted;
    double normalized = residual * std::sqrt(weight[r]);
    result.weighted_residual_sq += normalized * normalized;
    if (std::fabs(normalized) > result.worst_normalized_residual) {
      result.worst_normalized_residual = std::fabs(normalized);
      result.worst_measurement = r / 2;  // back to measurement index
    }
  }
  // PW_NO_ALLOC_END
  result.redundancy = rows - state_dim;
  return result;
}

std::vector<PhasorMeasurement> LinearStateEstimator::VoltageMeasurements(
    const Vector& vm, const Vector& va_rad, const std::vector<bool>& missing,
    double sigma) {
  PW_CHECK_EQ(vm.size(), va_rad.size());
  std::vector<PhasorMeasurement> out;
  out.reserve(vm.size());
  for (size_t i = 0; i < vm.size(); ++i) {
    if (i < missing.size() && missing[i]) continue;
    PhasorMeasurement m;
    m.kind = PhasorMeasurement::Kind::kBusVoltage;
    m.index = i;
    m.real = vm[i] * std::cos(va_rad[i]);
    m.imag = vm[i] * std::sin(va_rad[i]);
    m.sigma = sigma;
    out.push_back(m);
  }
  return out;
}

}  // namespace phasorwatch::se
