#ifndef PHASORWATCH_SE_STATE_ESTIMATOR_H_
#define PHASORWATCH_SE_STATE_ESTIMATOR_H_

#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "grid/grid.h"
#include "linalg/matrix.h"

namespace phasorwatch::se {

/// Linear PMU-only state estimation (Sec. III-B of the paper discusses
/// SE as the classic consumer of synchrophasors that can afford missing
/// -data reconstruction; this module provides that application as a
/// substrate).
///
/// With PMUs, both bus voltage phasors and branch current phasors are
/// linear in the rectangular state x = [Re(V); Im(V)], so weighted
/// least squares solves the estimation problem in one factorization —
/// no Newton iterations. The estimator also carries the classical
/// bad-data machinery: chi-square consistency test on the weighted
/// residual and largest-normalized-residual identification.

/// One phasor measurement. Voltage measurements reference a bus;
/// current measurements reference a branch index into grid.branches()
/// and measure the current flowing INTO the branch at its from end.
struct PhasorMeasurement {
  enum class Kind { kBusVoltage, kBranchCurrentFrom };
  Kind kind = Kind::kBusVoltage;
  size_t index = 0;       ///< bus index or branch index
  double real = 0.0;      ///< measured real part (pu)
  double imag = 0.0;      ///< measured imaginary part (pu)
  double sigma = 0.01;    ///< per-component standard deviation (pu)
};

/// Estimation output.
struct EstimationResult {
  linalg::Vector vm;       ///< estimated voltage magnitudes (pu)
  linalg::Vector va_rad;   ///< estimated voltage angles (rad)
  double weighted_residual_sq = 0.0;  ///< J(x) = sum (r_i / sigma_i)^2
  size_t redundancy = 0;   ///< measurement rows minus state dimension

  /// Chi-square consistency: J(x) compared against the 97.5% quantile
  /// of chi2 with `redundancy` degrees of freedom (Wilson-Hilferty
  /// approximation). True when the measurement set is self-consistent.
  bool ChiSquareTestPasses() const;

  /// Index (into the measurement list) of the measurement with the
  /// largest normalized residual component, and that residual value.
  size_t worst_measurement = 0;
  double worst_normalized_residual = 0.0;
};

/// Options for the WLS estimator.
struct EstimatorOptions {
  /// Grids with at least this many buses assemble the measurement
  /// Jacobian H and the gain matrix H^T W H in CSR form and factor the
  /// normal equations with the fill-reducing sparse LU; 0 disables the
  /// sparse path. Same policy and tolerance contract as
  /// PowerFlowOptions::sparse_bus_threshold (docs/SPARSE.md): the
  /// default keeps the IEEE evaluation systems on the dense path
  /// bit-identically, while 300/1000-bus synthetics switch over.
  size_t sparse_bus_threshold = 200;
};

/// Weighted-least-squares PMU state estimator for a fixed grid.
/// Estimate() solves one measurement set (the measurement configuration
/// may change per call — e.g. when PMUs drop out).
class LinearStateEstimator {
 public:
  explicit LinearStateEstimator(const grid::Grid& grid,
                                const EstimatorOptions& options = {});

  /// Solves WLS for the given measurements. Fails with
  /// kFailedPrecondition when the system is unobservable (rank of H
  /// below the state dimension) and kInvalidArgument on malformed
  /// measurements.
  PW_NODISCARD Result<EstimationResult> Estimate(
      const std::vector<PhasorMeasurement>& measurements) const;

  /// Convenience: builds a full voltage-measurement set from simulator
  /// output (one voltage phasor per non-missing bus).
  static std::vector<PhasorMeasurement> VoltageMeasurements(
      const linalg::Vector& vm, const linalg::Vector& va_rad,
      const std::vector<bool>& missing, double sigma = 0.005);

 private:
  PW_NODISCARD Result<EstimationResult> EstimateDense(
      const std::vector<PhasorMeasurement>& measurements) const;
  PW_NODISCARD Result<EstimationResult> EstimateSparse(
      const std::vector<PhasorMeasurement>& measurements) const;

  const grid::Grid* grid_;  // not owned
  EstimatorOptions options_;
};

}  // namespace phasorwatch::se

#endif  // PHASORWATCH_SE_STATE_ESTIMATOR_H_
