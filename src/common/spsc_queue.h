#ifndef PHASORWATCH_COMMON_SPSC_QUEUE_H_
#define PHASORWATCH_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace phasorwatch {

/// Bounded lock-free single-producer / single-consumer ring buffer.
///
/// The fleet engine's per-shard frame queue (docs/FLEET.md): one ingest
/// thread pushes, one shard drain thread pops, and a full queue rejects
/// instead of blocking — backpressure is the caller's decision, never a
/// stall inside the transport. The implementation is the classic
/// Lamport ring with cached indices: each side re-reads the other
/// side's atomic index only when its cached copy says the queue looks
/// full (producer) or empty (consumer), so the steady-state fast path
/// is one relaxed load, one store, and no shared-cache-line ping-pong
/// beyond the unavoidable index handoff.
///
/// Thread-safety contract: TryPush from exactly one thread at a time,
/// TryPop from exactly one thread at a time (they may be different
/// threads, that is the point). SizeApprox/capacity are safe anywhere.
/// The element type must be movable; slots hold default-constructed
/// T between uses, so moved-out elements release their resources on
/// the consumer side, not inside the ring.
template <typename T>
class SpscQueue {
 public:
  /// `min_capacity` is rounded up to the next power of two (at least 2)
  /// so the ring can mask instead of divide.
  explicit SpscQueue(size_t min_capacity) {
    PW_CHECK_GT(min_capacity, 0u);
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false (and leaves `item` untouched) when
  /// the ring is full — the caller decides whether to shed or retry.
  PW_NO_ALLOC bool TryPush(T&& item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t next = (tail + 1) & mask_;
    if (next == head_cached_) {
      head_cached_ = head_.load(std::memory_order_acquire);
      if (next == head_cached_) return false;  // full
    }
    slots_[tail] = std::move(item);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  PW_NO_ALLOC bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cached_) {
      tail_cached_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cached_) return false;  // empty
    }
    *out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Racy by construction (either index may move concurrently); good
  /// enough for gauges and drain/flush polling, not for correctness.
  PW_NO_ALLOC size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

  /// Usable slots (one ring slot is sacrificed to distinguish full from
  /// empty, so this is the constructor's rounded capacity minus one).
  size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;

  /// Producer-owned cache line: tail index plus the producer's stale
  /// copy of head. alignas keeps the two sides off each other's lines.
  alignas(64) std::atomic<size_t> tail_{0};
  size_t head_cached_ = 0;

  /// Consumer-owned cache line: head index plus the consumer's stale
  /// copy of tail.
  alignas(64) std::atomic<size_t> head_{0};
  size_t tail_cached_ = 0;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_SPSC_QUEUE_H_
