#ifndef PHASORWATCH_COMMON_SPSC_QUEUE_H_
#define PHASORWATCH_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace phasorwatch {

/// Bounded lock-free single-producer / single-consumer ring buffer.
///
/// The fleet engine's per-shard frame queue (docs/FLEET.md): one ingest
/// thread pushes, one shard drain thread pops, and a full queue rejects
/// instead of blocking — backpressure is the caller's decision, never a
/// stall inside the transport. The implementation is the classic
/// Lamport ring with cached indices: each side re-reads the other
/// side's atomic cursor only when its cached copy says the queue looks
/// full (producer) or empty (consumer), so the steady-state fast path
/// is one relaxed load, one store, and no shared-cache-line ping-pong
/// beyond the unavoidable cursor handoff.
///
/// The cursors are monotonic uint64 counters; a slot index is
/// `cursor & mask_`. Because the slot count is a power of two, 2^64 is
/// an exact multiple of it and the mapping stays continuous when the
/// counters wrap — the `(tail - head)` size arithmetic is likewise
/// exact modulo 2^64. Wraparound behavior is exercised directly by the
/// seeded-cursor constructor below.
///
/// Thread-safety contract: TryPush from exactly one thread at a time,
/// TryPop from exactly one thread at a time (they may be different
/// threads, that is the point). SizeApprox/capacity are safe anywhere.
/// The producer side is a lint-enforced contract: call sites of the
/// methods listed in the marker must carry a `// pw-producer:`
/// justification naming their single-producer argument (the
/// `single-producer` rule in tools/pw_lint.py).
/// The element type must be movable; slots hold default-constructed
/// T between uses, so moved-out elements release their resources on
/// the consumer side, not inside the ring.
// PW_SINGLE_PRODUCER(TryPush)
template <typename T>
class SpscQueue {
 public:
  /// `min_capacity` is rounded up to the next power of two (at least 2)
  /// so the ring can mask instead of divide.
  explicit SpscQueue(size_t min_capacity) : SpscQueue(min_capacity, 0) {}

  /// Test hook: starts both cursors at `start_cursor` instead of zero,
  /// so tests can park the ring just below uint64 overflow and drive
  /// the cursors across it. Behavior is otherwise identical — the
  /// public contract never depends on absolute cursor values.
  SpscQueue(size_t min_capacity, uint64_t start_cursor)
      : tail_(start_cursor),
        head_cached_(start_cursor),
        head_(start_cursor),
        tail_cached_(start_cursor) {
    PW_CHECK_GT(min_capacity, 0u);
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false (and leaves `item` untouched) when
  /// the ring is full — the caller decides whether to shed or retry.
  PW_NO_ALLOC bool TryPush(T&& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    // Full at mask_ in-flight items: one slot stays sacrificed so
    // capacity() is unchanged from the index-based implementation.
    if (tail - head_cached_ >= mask_) {
      head_cached_ = head_.load(std::memory_order_acquire);
      if (tail - head_cached_ >= mask_) return false;  // full
    }
    slots_[static_cast<size_t>(tail) & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  PW_NO_ALLOC bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cached_) {
      tail_cached_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cached_) return false;  // empty
    }
    *out = std::move(slots_[static_cast<size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy by construction (either cursor may move concurrently); good
  /// enough for gauges and drain/flush polling, not for correctness.
  PW_NO_ALLOC size_t SizeApprox() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t size = tail - head;
    // The consumer may advance head between the two loads, making the
    // unsigned difference wrap huge; clamp to the only sizes the ring
    // can actually hold.
    return size > mask_ ? mask_ : static_cast<size_t>(size);
  }

  /// Usable slots (one ring slot is sacrificed to distinguish full from
  /// empty, so this is the constructor's rounded capacity minus one).
  size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;

  /// Producer-owned cache line: tail cursor plus the producer's stale
  /// copy of head. alignas keeps the two sides off each other's lines.
  alignas(64) std::atomic<uint64_t> tail_;
  uint64_t head_cached_;

  /// Consumer-owned cache line: head cursor plus the consumer's stale
  /// copy of tail.
  alignas(64) std::atomic<uint64_t> head_;
  uint64_t tail_cached_;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_SPSC_QUEUE_H_
