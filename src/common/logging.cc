#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace phasorwatch {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(std::string_view name, LogLevel* level) {
  std::string lower(name);
  for (char& ch : lower) ch = static_cast<char>(std::tolower(
      static_cast<unsigned char>(ch)));
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

bool SetLogLevelFromEnv() {
  const char* value = std::getenv("PW_LOG_LEVEL");
  if (value == nullptr || value[0] == '\0') return false;
  LogLevel level;
  if (!ParseLogLevel(value, &level)) {
    PW_LOG(Warning) << "ignoring unrecognized PW_LOG_LEVEL=\"" << value
                    << "\" (want debug/info/warn/error)";
    return false;
  }
  SetLogLevel(level);
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal_logging
}  // namespace phasorwatch
