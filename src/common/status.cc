#include "common/status.h"

namespace phasorwatch {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kSingular:
      return "Singular";
    case StatusCode::kIslanded:
      return "Islanded";
    case StatusCode::kDataMissing:
      return "DataMissing";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace phasorwatch
