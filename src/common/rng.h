#ifndef PHASORWATCH_COMMON_RNG_H_
#define PHASORWATCH_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace phasorwatch {

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// All stochastic components of the library (load processes, measurement
/// noise, missing-data draws, train/test splits) take an explicit Rng so
/// that every experiment is reproducible from a single seed. The
/// implementation is self-contained to guarantee identical streams across
/// standard libraries and platforms, which <random> does not.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal deviate (Box-Muller with caching).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  /// Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; used to give each scenario
  /// or worker its own stream without correlations.
  Rng Fork();

  /// Derives the child generator for stream `stream` of the job seeded
  /// by `seed`, without constructing (or advancing) the parent. The
  /// derivation is a SplitMix64-style hash of (seed, stream), so child
  /// streams are mutually independent and — crucially for parallel
  /// work — depend only on the pair of values, never on how many other
  /// streams were forked before this one or on which thread forks it.
  /// `Fork(s, 0), Fork(s, 1), ...` is the per-case seeding scheme used
  /// by the dataset builder and experiment loops; see
  /// docs/PARALLELISM.md.
  static Rng Fork(uint64_t seed, uint64_t stream);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_RNG_H_
