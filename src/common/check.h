#ifndef PHASORWATCH_COMMON_CHECK_H_
#define PHASORWATCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal-invariant checks. These abort on failure in all build modes:
/// a violated invariant in numerical code silently corrupts every result
/// downstream, so failing fast is the only safe behavior. Use Status for
/// errors callers can act on; use PW_CHECK for programmer errors.

#define PW_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PW_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define PW_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PW_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, (msg));                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define PW_CHECK_EQ(a, b) PW_CHECK((a) == (b))
#define PW_CHECK_NE(a, b) PW_CHECK((a) != (b))
#define PW_CHECK_LT(a, b) PW_CHECK((a) < (b))
#define PW_CHECK_LE(a, b) PW_CHECK((a) <= (b))
#define PW_CHECK_GT(a, b) PW_CHECK((a) > (b))
#define PW_CHECK_GE(a, b) PW_CHECK((a) >= (b))

#endif  // PHASORWATCH_COMMON_CHECK_H_
