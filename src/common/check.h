#ifndef PHASORWATCH_COMMON_CHECK_H_
#define PHASORWATCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal-invariant checks. These abort on failure in all build modes:
/// a violated invariant in numerical code silently corrupts every result
/// downstream, so failing fast is the only safe behavior. Use Status for
/// errors callers can act on; use PW_CHECK for programmer errors.
///
/// This header also defines the function-annotation vocabulary the
/// static-analysis gate enforces (see docs/STATIC_ANALYSIS.md):
///
///   PW_NODISCARD   the return value carries an error or a computed
///                  result; discarding it is a bug. tools/pw_lint.py
///                  requires it on every public Status/Result API.
///   PW_HOT_PATH    the function is on a per-sample or per-iteration
///                  path; keep it branch-light and allocation-aware.
///   PW_NO_ALLOC    PW_HOT_PATH plus a machine-checked contract: the
///                  function body must not heap-allocate (no new, no
///                  container construction, no value-semantic Matrix
///                  ops). Enforced by tools/pw_lint.py and measured by
///                  bench/alloc_counter.
///
/// PW_DCHECK_* are debug-only twins of PW_CHECK_* for per-element and
/// per-iteration contracts too hot to pay for in Release: they compile
/// to nothing under NDEBUG unless PW_DCHECK_ENABLED forces them on.

#define PW_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PW_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define PW_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "PW_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, (msg));                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define PW_CHECK_EQ(a, b) PW_CHECK((a) == (b))
#define PW_CHECK_NE(a, b) PW_CHECK((a) != (b))
#define PW_CHECK_LT(a, b) PW_CHECK((a) < (b))
#define PW_CHECK_LE(a, b) PW_CHECK((a) <= (b))
#define PW_CHECK_GT(a, b) PW_CHECK((a) > (b))
#define PW_CHECK_GE(a, b) PW_CHECK((a) >= (b))

// --- function annotations ---------------------------------------------

/// Return values that must not be silently dropped. Status and Result
/// are additionally [[nodiscard]] at class level, so the compiler flags
/// call sites even when a declaration misses the annotation; pw_lint
/// still requires the explicit marker on public APIs so intent is
/// visible at the declaration.
#define PW_NODISCARD [[nodiscard]]

#if defined(__GNUC__) || defined(__clang__)
#define PW_HOT_PATH __attribute__((hot))
#else
#define PW_HOT_PATH
#endif

/// Allocation-free contract marker. Expands to PW_HOT_PATH (every
/// no-alloc function is on a hot path); the no-allocation property
/// itself is enforced statically by tools/pw_lint.py, which scans the
/// bodies of functions whose definitions carry this marker.
#define PW_NO_ALLOC PW_HOT_PATH

// --- debug-only contracts ---------------------------------------------

#if !defined(NDEBUG) || defined(PW_DCHECK_ENABLED)
#define PW_DCHECK_IS_ON 1
#else
#define PW_DCHECK_IS_ON 0
#endif

#if PW_DCHECK_IS_ON
#define PW_DCHECK(cond) PW_CHECK(cond)
#define PW_DCHECK_MSG(cond, msg) PW_CHECK_MSG(cond, msg)
#else
// Swallow the condition without evaluating it, but keep it compiled so
// contracts cannot rot silently in Release-only code paths.
#define PW_DCHECK(cond) \
  do {                  \
    (void)sizeof(cond); \
  } while (0)
#define PW_DCHECK_MSG(cond, msg) \
  do {                           \
    (void)sizeof(cond);          \
    (void)sizeof(msg);           \
  } while (0)
#endif

#define PW_DCHECK_EQ(a, b) PW_DCHECK((a) == (b))
#define PW_DCHECK_NE(a, b) PW_DCHECK((a) != (b))
#define PW_DCHECK_LT(a, b) PW_DCHECK((a) < (b))
#define PW_DCHECK_LE(a, b) PW_DCHECK((a) <= (b))
#define PW_DCHECK_GT(a, b) PW_DCHECK((a) > (b))
#define PW_DCHECK_GE(a, b) PW_DCHECK((a) >= (b))

/// Shape/bound contracts for matrix- and vector-shaped arguments.
/// Debug-only: entry-point shape checks in kernels stay PW_CHECK (paid
/// once per call); these are for per-element and per-iteration indices.
#define PW_DCHECK_BOUND(i, n) PW_DCHECK_LT(i, n)
#define PW_DCHECK_SIZE(v, n) PW_DCHECK_EQ((v).size(), (n))
#define PW_DCHECK_SHAPE(m, r, c)  \
  do {                            \
    PW_DCHECK_EQ((m).rows(), (r)); \
    PW_DCHECK_EQ((m).cols(), (c)); \
  } while (0)

#endif  // PHASORWATCH_COMMON_CHECK_H_
