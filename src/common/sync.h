#ifndef PHASORWATCH_COMMON_SYNC_H_
#define PHASORWATCH_COMMON_SYNC_H_

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

#include "common/check.h"

/// Concurrency contract layer (see docs/STATIC_ANALYSIS.md,
/// "Concurrency contracts"). Every lock in the tree goes through the
/// wrappers below — tools/pw_lint.py's `sync-discipline` rule rejects
/// raw std::mutex / std::lock_guard outside this header — so that:
///
///   1. Clang Thread Safety Analysis (-Wthread-safety, the
///      PW_THREAD_SAFETY=ON lane in scripts/check.sh) can prove at
///      compile time that every PW_GUARDED_BY field is only touched
///      with its mutex held and every PW_REQUIRES method is only
///      called under lock. On non-Clang compilers the attributes
///      expand to nothing and the wrappers are zero-overhead
///      pass-throughs to the std types.
///   2. A debug-only lock-rank detector (active when PW_DCHECK_IS_ON)
///      aborts at the acquisition site of any lock-order inversion or
///      self-deadlock, instead of deadlocking in production. Ranks are
///      declared at mutex construction from the table in `lock_rank`;
///      an unranked mutex participates in held-lock tracking (so
///      AssertHeld works) but is exempt from ordering checks.
///
/// Attribute vocabulary (all expand to nothing on non-Clang):
///
///   PW_CAPABILITY(name)         class is a lockable capability
///   PW_SCOPED_CAPABILITY        RAII type that acquires in its ctor
///   PW_GUARDED_BY(mu)           field requires mu held to touch
///   PW_PT_GUARDED_BY(mu)        pointee requires mu held to touch
///   PW_REQUIRES(mu...)          caller must hold mu exclusively
///   PW_REQUIRES_SHARED(mu...)   caller must hold mu at least shared
///   PW_ACQUIRE(mu...)           function acquires mu, returns held
///   PW_ACQUIRE_SHARED(mu...)    shared flavor of PW_ACQUIRE
///   PW_RELEASE(mu...)           function releases mu
///   PW_RELEASE_SHARED(mu...)    shared flavor of PW_RELEASE
///   PW_TRY_ACQUIRE(ok, mu...)   acquires mu when returning `ok`
///   PW_EXCLUDES(mu...)          caller must NOT hold mu (deadlock)
///   PW_ASSERT_CAPABILITY(mu)    runtime assertion that mu is held
///   PW_RETURN_CAPABILITY(mu)    function returns a reference to mu
///   PW_ACQUIRED_BEFORE(mu...)   declaration-site ordering hint
///   PW_ACQUIRED_AFTER(mu...)    declaration-site ordering hint
///   PW_NO_THREAD_SAFETY_ANALYSIS
///       opt a function out of the analysis. pw-lint requires a
///       justification comment on the same or preceding line.

#if defined(__clang__)
#define PW_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PW_THREAD_ANNOTATION_(x)
#endif

#define PW_CAPABILITY(x) PW_THREAD_ANNOTATION_(capability(x))
#define PW_SCOPED_CAPABILITY PW_THREAD_ANNOTATION_(scoped_lockable)
#define PW_GUARDED_BY(x) PW_THREAD_ANNOTATION_(guarded_by(x))
#define PW_PT_GUARDED_BY(x) PW_THREAD_ANNOTATION_(pt_guarded_by(x))
#define PW_REQUIRES(...) PW_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define PW_REQUIRES_SHARED(...) \
  PW_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define PW_ACQUIRE(...) PW_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PW_ACQUIRE_SHARED(...) \
  PW_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define PW_RELEASE(...) \
  PW_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define PW_RELEASE_SHARED(...) \
  PW_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define PW_TRY_ACQUIRE(...) \
  PW_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define PW_EXCLUDES(...) PW_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define PW_ASSERT_CAPABILITY(x) PW_THREAD_ANNOTATION_(assert_capability(x))
#define PW_ASSERT_SHARED_CAPABILITY(x) \
  PW_THREAD_ANNOTATION_(assert_shared_capability(x))
#define PW_RETURN_CAPABILITY(x) PW_THREAD_ANNOTATION_(lock_returned(x))
#define PW_ACQUIRED_BEFORE(...) \
  PW_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define PW_ACQUIRED_AFTER(...) PW_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define PW_NO_THREAD_SAFETY_ANALYSIS \
  PW_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace phasorwatch {

/// Global lock-order table. A thread may only acquire a ranked mutex
/// whose rank is strictly greater than every ranked mutex it already
/// holds; the debug detector aborts on violation. Gaps are deliberate —
/// new locks slot in without renumbering. Keep this table and the one
/// in docs/STATIC_ANALYSIS.md in sync.
///
/// Domain locks rank low and instrumentation locks rank high, so code
/// holding a detector/fleet lock may still lazily resolve an obs
/// instrument (which briefly takes the registry lock).
namespace lock_rank {
inline constexpr int kUnranked = -1;       // exempt from ordering checks
inline constexpr int kFleetControl = 10;   // FleetEngine Shard::control_mu
inline constexpr int kFleetDone = 15;      // RunOnShard completion latch
inline constexpr int kThreadPool = 20;     // ThreadPool::mu_
inline constexpr int kParallelFor = 25;    // ParallelFor ForState::mu
inline constexpr int kProximityCache = 30; // ProximityEngine::mu_
inline constexpr int kMetricsRegistry = 40;// MetricsRegistry::mu_
inline constexpr int kHistogram = 50;      // Histogram::mu_ (inside registry
                                           // snapshots)
inline constexpr int kTraceRing = 60;      // TraceRing::mu_
inline constexpr int kEventLog = 70;       // EventLog::mu_
}  // namespace lock_rank

namespace sync_internal {

#if PW_DCHECK_IS_ON

/// Per-thread stack of held locks. Fixed-size so the tracker itself
/// never allocates (lock acquisition sits on instrumented hot paths).
struct HeldStack {
  static constexpr size_t kMaxDepth = 64;
  const void* caps[kMaxDepth];
  int ranks[kMaxDepth];
  size_t depth = 0;
};

inline HeldStack& TlsHeldStack() {
  thread_local HeldStack stack;
  return stack;
}

/// Records an acquisition; aborts on self-deadlock (re-acquiring a
/// capability this thread already holds) and, when `check_rank` is set
/// (blocking acquisitions only — TryLock cannot deadlock), on rank
/// inversion against any held ranked lock. Called *before* the
/// underlying lock so an inversion aborts with a diagnostic instead of
/// deadlocking.
inline void OnAcquire(const void* cap, int rank, bool check_rank) {
  HeldStack& held = TlsHeldStack();
  for (size_t i = 0; i < held.depth; ++i) {
    if (held.caps[i] == cap) {
      std::fprintf(stderr,
                   "PW_SYNC self-deadlock: thread re-acquiring a lock it "
                   "already holds (rank %d)\n",
                   rank);
      std::abort();
    }
    if (check_rank && rank != lock_rank::kUnranked &&
        held.ranks[i] != lock_rank::kUnranked && held.ranks[i] >= rank) {
      std::fprintf(stderr,
                   "PW_SYNC lock rank inversion: acquiring rank %d while "
                   "holding rank %d (see lock_rank table in common/sync.h)\n",
                   rank, held.ranks[i]);
      std::abort();
    }
  }
  PW_CHECK_MSG(held.depth < HeldStack::kMaxDepth,
               "held-lock stack overflow: raise HeldStack::kMaxDepth");
  held.caps[held.depth] = cap;
  held.ranks[held.depth] = rank;
  ++held.depth;
}

inline void OnRelease(const void* cap) {
  HeldStack& held = TlsHeldStack();
  for (size_t i = held.depth; i-- > 0;) {
    if (held.caps[i] == cap) {
      for (size_t j = i + 1; j < held.depth; ++j) {
        held.caps[j - 1] = held.caps[j];
        held.ranks[j - 1] = held.ranks[j];
      }
      --held.depth;
      return;
    }
  }
  std::fprintf(stderr,
               "PW_SYNC releasing a lock this thread does not hold\n");
  std::abort();
}

inline bool IsHeld(const void* cap) {
  const HeldStack& held = TlsHeldStack();
  for (size_t i = 0; i < held.depth; ++i) {
    if (held.caps[i] == cap) return true;
  }
  return false;
}

#else  // !PW_DCHECK_IS_ON

inline void OnAcquire(const void*, int, bool) {}
inline void OnRelease(const void*) {}
inline bool IsHeld(const void*) { return true; }

#endif  // PW_DCHECK_IS_ON

}  // namespace sync_internal

class CondVar;

/// Exclusive mutex. A thin wrapper over std::mutex that (a) carries the
/// capability annotation Clang's analysis keys on and (b) feeds the
/// debug lock-rank detector. Construct with a rank from the
/// `lock_rank` table to opt into ordering checks; default construction
/// is unranked (tracked for AssertHeld, exempt from ordering).
class PW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PW_ACQUIRE() {
    sync_internal::OnAcquire(this, rank_, /*check_rank=*/true);
    mu_.lock();
  }

  void Unlock() PW_RELEASE() {
    sync_internal::OnRelease(this);
    mu_.unlock();
  }

  PW_NODISCARD bool TryLock() PW_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::OnAcquire(this, rank_, /*check_rank=*/false);
    return true;
  }

  /// Backs PW_REQUIRES contracts at runtime when the compile-time
  /// analysis is unavailable: abort (debug builds) if the calling
  /// thread does not hold this mutex.
  void AssertHeld() const PW_ASSERT_CAPABILITY(this) {
    PW_DCHECK_MSG(sync_internal::IsHeld(this),
                  "PW_REQUIRES violated: calling thread does not hold the "
                  "mutex");
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  int rank_ = lock_rank::kUnranked;
};

/// Reader/writer mutex wrapping std::shared_mutex. Same rank and
/// tracking semantics as Mutex; a shared hold participates in rank
/// ordering exactly like an exclusive one (a reader waiting behind a
/// writer deadlocks just as hard).
class PW_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank) : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PW_ACQUIRE() {
    sync_internal::OnAcquire(this, rank_, /*check_rank=*/true);
    mu_.lock();
  }

  void Unlock() PW_RELEASE() {
    sync_internal::OnRelease(this);
    mu_.unlock();
  }

  void LockShared() PW_ACQUIRE_SHARED() {
    sync_internal::OnAcquire(this, rank_, /*check_rank=*/true);
    mu_.lock_shared();
  }

  void UnlockShared() PW_RELEASE_SHARED() {
    sync_internal::OnRelease(this);
    mu_.unlock_shared();
  }

  void AssertHeld() const PW_ASSERT_CAPABILITY(this) {
    PW_DCHECK_MSG(sync_internal::IsHeld(this),
                  "PW_REQUIRES violated: calling thread does not hold the "
                  "shared mutex");
  }

  void AssertReaderHeld() const PW_ASSERT_SHARED_CAPABILITY(this) {
    PW_DCHECK_MSG(sync_internal::IsHeld(this),
                  "PW_REQUIRES_SHARED violated: calling thread holds neither "
                  "a shared nor an exclusive lock");
  }

 private:
  std::shared_mutex mu_;
  int rank_ = lock_rank::kUnranked;
};

/// RAII exclusive lock over Mutex — the project's std::lock_guard.
class PW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PW_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PW_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class PW_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) PW_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() PW_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class PW_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) PW_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() PW_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the project Mutex. Wait() takes the
/// Mutex directly (PW_REQUIRES keeps the contract visible to the
/// analysis); call sites use explicit `while (!predicate)` loops
/// instead of predicate lambdas — a lambda body is opaque to the
/// thread-safety analysis, a while loop is not.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously
  /// woken — callers loop on their predicate), and re-acquires `mu`
  /// before returning. The held-lock tracker keeps `mu` registered
  /// across the wait: the capability is conceptually held for the full
  /// scope, and this thread cannot acquire anything else while blocked.
  void Wait(Mutex& mu) PW_REQUIRES(mu) {
    mu.AssertHeld();
    // Adopt the already-held std::mutex for the wait protocol, then
    // release ownership back to the caller's scoped lock without
    // unlocking.
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_SYNC_H_
