#ifndef PHASORWATCH_COMMON_TABLE_PRINTER_H_
#define PHASORWATCH_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace phasorwatch {

/// Collects rows of string cells and renders an aligned ASCII table.
/// Used by the benchmark harnesses to print the paper's figure series in
/// a stable, diffable format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; pads or truncates to the header width.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with fixed precision for table cells.
  static std::string Num(double value, int precision = 4);

  /// Renders the table with a header rule to `os`.
  void Print(std::ostream& os) const;

  /// Renders as comma-separated values (for plotting scripts).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_TABLE_PRINTER_H_
