#ifndef PHASORWATCH_COMMON_WORKSPACE_H_
#define PHASORWATCH_COMMON_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"

namespace phasorwatch {

/// Bump-arena scratch memory for allocation-free hot paths.
///
/// A Workspace hands out double buffers by bumping a cursor through
/// chunks it owns. Nothing is freed per-allocation: a hot path takes a
/// Frame (nested, RAII) or the owner calls Reset() at a sample
/// boundary, and the cursor rewinds so the next pass reuses the same
/// memory. The arena grows monotonically while warming up (each new
/// chunk doubles capacity) and stops allocating once the high-water
/// footprint of the workload is reached; Reset() coalesces a
/// fragmented arena into one chunk of the full capacity, so steady
/// state is a single buffer and zero heap traffic.
///
/// Thread safety: none. Use PerThread() to get this thread's instance;
/// never share a Workspace across threads.
///
/// Lifetime discipline: pointers from Alloc() (and views built over
/// them) are valid until the enclosing Frame is destroyed or Reset()
/// is called — after that they dangle. Reset() bumps an epoch counter;
/// Span() returns an epoch-checked handle whose accesses PW_CHECK that
/// the arena has not been reset, turning use-after-reset into an
/// immediate abort instead of silent corruption.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// RAII save/restore of the bump cursor. Code that runs inside a
  /// larger computation (e.g. a proximity evaluation inside a training
  /// loop) opens a Frame so its scratch is reclaimed on scope exit and
  /// the arena does not grow with iteration count. Frames nest.
  class Frame {
   public:
    explicit Frame(Workspace& ws)
        : ws_(&ws), chunk_(ws.cur_), used_(ws.ChunkUsed()) {}
    ~Frame() { ws_->Rewind(chunk_, used_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Workspace* ws_;
    size_t chunk_;
    size_t used_;
  };

  /// `n` doubles, zero-initialized. Valid until the enclosing Frame
  /// exits or Reset() runs.
  double* Alloc(size_t n);

  /// Rewinds the cursor to empty and invalidates every outstanding
  /// pointer and Span (epoch bump). If warm-up left multiple chunks,
  /// replaces them with one chunk of the combined capacity so future
  /// passes bump through contiguous memory with no further heap use.
  void Reset();

  /// Incremented by every Reset(); Spans compare against it.
  uint64_t epoch() const { return epoch_; }

  /// Total doubles handed out since the last Reset (or construction).
  size_t used() const;
  /// Total capacity in bytes across all chunks (the arena footprint).
  size_t capacity_bytes() const;

  /// This thread's workspace. First use on a thread constructs it;
  /// it lives until thread exit.
  static Workspace& PerThread();

 private:
  struct Chunk {
    std::unique_ptr<double[]> data;
    size_t cap = 0;
    size_t used = 0;
  };

  size_t ChunkUsed() const {
    return chunks_.empty() ? 0 : chunks_[cur_].used;
  }
  void Rewind(size_t chunk, size_t used);
  void AddChunk(size_t min_doubles);

  std::vector<Chunk> chunks_;
  size_t cur_ = 0;      ///< index of the chunk currently bumping
  uint64_t epoch_ = 0;  ///< bumped by Reset()
};

/// Epoch-checked handle to a Workspace allocation. Every element access
/// verifies the arena has not been Reset() since the span was taken —
/// a stale span aborts via PW_CHECK rather than reading recycled
/// memory. Frames do not bump the epoch (rewound-but-same-epoch reuse
/// is the arena's whole point), so Span catches the cross-sample
/// use-after-reset class, not intra-frame reuse.
class WorkspaceSpan {
 public:
  WorkspaceSpan() = default;
  WorkspaceSpan(const Workspace* ws, double* data, size_t size)
      : ws_(ws), epoch_(ws->epoch()), data_(data), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  double& operator[](size_t i) const {
    CheckLive();
    PW_CHECK_LT(i, size_);
    return data_[i];
  }

  /// Raw pointer for bulk kernels; checked once at extraction.
  double* data() const {
    CheckLive();
    return data_;
  }

 private:
  void CheckLive() const {
    PW_CHECK(ws_ != nullptr);
    PW_CHECK_EQ(epoch_, ws_->epoch());
  }

  const Workspace* ws_ = nullptr;
  uint64_t epoch_ = 0;
  double* data_ = nullptr;
  size_t size_ = 0;
};

/// Alloc + epoch-checked handle in one step.
inline WorkspaceSpan AllocSpan(Workspace& ws, size_t n) {
  return WorkspaceSpan(&ws, ws.Alloc(n), n);
}

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_WORKSPACE_H_
