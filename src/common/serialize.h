#ifndef PHASORWATCH_COMMON_SERIALIZE_H_
#define PHASORWATCH_COMMON_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace phasorwatch {

/// Little binary writer for model persistence. The format is
/// little-endian, fixed-width, with no alignment padding; every
/// compound structure is length-prefixed so readers can validate
/// buffers before allocating.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteDouble(double value);
  void WriteBool(bool value);
  void WriteString(const std::string& value);
  void WriteDoubleVector(const std::vector<double>& values);
  void WriteSizeVector(const std::vector<size_t>& values);

  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
};

/// Counterpart reader; every method validates stream state and sizes,
/// returning kInvalidArgument on truncated or corrupt input.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString(size_t max_length = 1 << 20);
  Result<std::vector<double>> ReadDoubleVector(size_t max_size = 1 << 28);
  Result<std::vector<size_t>> ReadSizeVector(size_t max_size = 1 << 28);

 private:
  std::istream& in_;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_SERIALIZE_H_
