#ifndef PHASORWATCH_COMMON_SERIALIZE_H_
#define PHASORWATCH_COMMON_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace phasorwatch {

// --- JSON text helpers -------------------------------------------------
//
// The observability layer (src/obs) emits JSONL event logs and JSON
// metric snapshots; these helpers keep that output well-formed without
// pulling in a JSON library.

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included): ", \, control characters.
std::string JsonEscape(std::string_view s);
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Formats a double as a valid JSON number token. NaN and infinities
/// (not representable in JSON) become `null`.
std::string FormatJsonDouble(double value);

/// Strict validation of one complete JSON value (object, array, string,
/// number, true/false/null). Returns kInvalidArgument with a position
/// hint on malformed input. Used by tests and by the `--validate-events`
/// mode of grid_monitor to verify emitted JSONL files.
PW_NODISCARD Status ValidateJson(std::string_view text);

/// Extracts the raw value text of a top-level key in a JSON object
/// (e.g. `"42"`, `"\"raise\""`, `"[1,2]"`). kNotFound when the key is
/// absent; kInvalidArgument when `text` is not a JSON object. Shallow:
/// only top-level keys are visible.
PW_NODISCARD Result<std::string> JsonObjectField(std::string_view text,
                                                 std::string_view key);

/// Little binary writer for model persistence. The format is
/// little-endian, fixed-width, with no alignment padding; every
/// compound structure is length-prefixed so readers can validate
/// buffers before allocating.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteDouble(double value);
  void WriteBool(bool value);
  void WriteString(const std::string& value);
  void WriteDoubleVector(const std::vector<double>& values);
  void WriteSizeVector(const std::vector<size_t>& values);

  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
};

/// Counterpart reader; every method validates stream state and sizes,
/// returning kInvalidArgument on truncated or corrupt input.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  PW_NODISCARD Result<uint64_t> ReadU64();
  PW_NODISCARD Result<int64_t> ReadI64();
  PW_NODISCARD Result<double> ReadDouble();
  PW_NODISCARD Result<bool> ReadBool();
  PW_NODISCARD Result<std::string> ReadString(size_t max_length = 1 << 20);
  PW_NODISCARD Result<std::vector<double>> ReadDoubleVector(
      size_t max_size = 1 << 28);
  PW_NODISCARD Result<std::vector<size_t>> ReadSizeVector(
      size_t max_size = 1 << 28);

 private:
  std::istream& in_;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_SERIALIZE_H_
