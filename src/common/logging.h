#ifndef PHASORWATCH_COMMON_LOGGING_H_
#define PHASORWATCH_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace phasorwatch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name ("debug", "info", "warn"/"warning", "error"),
/// case-insensitive. Returns false (and leaves `level` untouched) on
/// anything else.
bool ParseLogLevel(std::string_view name, LogLevel* level);

/// Applies the PW_LOG_LEVEL environment variable, if set and valid, to
/// the global minimum level. Call once at binary startup (examples and
/// bench harnesses do). Returns true when the variable was present and
/// parsed; an unset variable is a silent no-op, a malformed one logs a
/// warning.
bool SetLogLevelFromEnv();

namespace internal_logging {

/// Stream-style log sink that writes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Per-call-site occurrence check backing PW_LOG_EVERY_N: true on the
/// 1st, (n+1)th, (2n+1)th... invocation. n == 0 behaves like n == 1.
inline bool LogEveryNCheck(std::atomic<uint64_t>& counter, uint64_t n) {
  if (n == 0) n = 1;
  return counter.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace internal_logging
}  // namespace phasorwatch

#define PW_LOG(level)                                                   \
  ::phasorwatch::internal_logging::LogMessage(                          \
      ::phasorwatch::LogLevel::k##level, __FILE__, __LINE__)

/// Rate-limited logging for per-sample hot paths: emits only every n-th
/// invocation of this call site (the first one always logs). A
/// StreamingMonitor fed 30-60 samples/s can leave a debug line here
/// without flooding stderr. Each expansion keeps its own atomic
/// counter, so the limit is per call site, not global.
#define PW_LOG_EVERY_N(level, n)                                        \
  if ([]() {                                                            \
        static ::std::atomic<uint64_t> pw_log_every_n_counter_{0};      \
        return ::phasorwatch::internal_logging::LogEveryNCheck(         \
            pw_log_every_n_counter_, static_cast<uint64_t>(n));         \
      }())                                                              \
  PW_LOG(level)

#endif  // PHASORWATCH_COMMON_LOGGING_H_
