#ifndef PHASORWATCH_COMMON_LOGGING_H_
#define PHASORWATCH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace phasorwatch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink that writes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace phasorwatch

#define PW_LOG(level)                                                   \
  ::phasorwatch::internal_logging::LogMessage(                          \
      ::phasorwatch::LogLevel::k##level, __FILE__, __LINE__)

#endif  // PHASORWATCH_COMMON_LOGGING_H_
