#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace phasorwatch {
namespace {

// [[maybe_unused]]: with PW_OBS_DISABLED the macro expansions that call
// this (and the start-time captures) compile away.
[[maybe_unused]] double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Runs one ParallelFor iteration body, never letting an exception
// escape across a thread boundary.
Status RunBody(const std::function<Status(size_t)>& body, size_t i) {
  try {
    return body(i);
  } catch (const std::exception& e) {
    return Status::Internal("ParallelFor body threw: " + std::string(e.what()));
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

// Shared state of one ParallelFor call. Runner tasks hold it via
// shared_ptr: a runner that wakes up after the loop already finished
// only touches `next` (the claim counter), never `body`.
struct ForState {
  ForState(size_t n_in, const std::function<Status(size_t)>* body_in)
      : n(n_in), body(body_in) {}

  const size_t n;
  const std::function<Status(size_t)>* const body;
  std::atomic<size_t> next{0};

  Mutex mu{lock_rank::kParallelFor};
  CondVar done_cv;
  size_t done PW_GUARDED_BY(mu) = 0;
  size_t error_index PW_GUARDED_BY(mu) = 0;
  /// First (lowest-index) failure.
  Status error PW_GUARDED_BY(mu);

  // Claims and runs iterations until the range is exhausted.
  void Drain() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      [[maybe_unused]] auto start = std::chrono::steady_clock::now();
      Status status = RunBody(*body, i);
      PW_OBS_HISTOGRAM_OBSERVE("pool.task_us", ElapsedUs(start),
                               obs::DefaultLatencyBucketsUs());
      PW_OBS_COUNTER_INC("pool.tasks_executed");
      MutexLock lock(mu);
      if (!status.ok() && (error.ok() || i < error_index)) {
        error = std::move(status);
        error_index = i;
      }
      if (++done == n) done_cv.NotifyAll();
    }
  }
};

}  // namespace

size_t ResolveParallelism(size_t requested) {
  if (const char* env = std::getenv("PW_THREADS")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') requested = static_cast<size_t>(v);
  }
  if (requested == 0) {
    requested = std::thread::hardware_concurrency();
    if (requested == 0) requested = 1;
  }
  return requested;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // degree 1: caller-only, no workers
  workers_.reserve(num_threads - 1);
  for (size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  PW_OBS_GAUGE_SET("pool.workers", workers_.size());
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // Workers drain the queue before exiting (see WorkerLoop), but a
  // degree-1 pool has none; any tasks submitted to it already ran
  // inline, so the queue is empty either way.
}

void ThreadPool::Submit(std::function<void()> task) {
  PW_OBS_COUNTER_INC("pool.tasks_submitted");
  if (workers_.empty()) {
    // Degree-1 pool: run inline; Submit is still "eventually runs".
    try {
      task();
    } catch (...) {
      // Fire-and-forget contract: exceptions end with the task.
    }
    PW_OBS_COUNTER_INC("pool.tasks_executed");
    return;
  }
  size_t depth;
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  PW_OBS_GAUGE_SET("pool.queue_depth", depth);
  work_cv_.NotifyOne();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    PW_OBS_GAUGE_SET("pool.queue_depth", queue_.size());
  }
  [[maybe_unused]] auto start = std::chrono::steady_clock::now();
  try {
    task();
  } catch (...) {
    // Fire-and-forget tasks swallow exceptions; ParallelFor bodies
    // convert them to Status before they reach this frame.
  }
  PW_OBS_HISTOGRAM_OBSERVE("pool.task_us", ElapsedUs(start),
                           obs::DefaultLatencyBucketsUs());
  PW_OBS_COUNTER_INC("pool.tasks_executed");
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    {
      // Explicit predicate loop (not a wait-with-lambda): the lambda
      // body would be opaque to the thread-safety analysis.
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (stopping_ && queue_.empty()) return;
    }
    RunOneTask();
  }
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& body) {
  if (n == 0) return Status::OK();
  PW_OBS_COUNTER_INC("pool.parallel_for_calls");

  if (workers_.empty() || n == 1) {
    // Serial path. Still runs every iteration and reports the
    // lowest-index failure, so the Status contract matches the
    // parallel path exactly.
    Status first_error;
    for (size_t i = 0; i < n; ++i) {
      Status status = RunBody(body, i);
      if (!status.ok() && first_error.ok()) first_error = std::move(status);
      PW_OBS_COUNTER_INC("pool.tasks_executed");
    }
    return first_error;
  }

  auto state = std::make_shared<ForState>(n, &body);

  // One runner per worker (capped by the iteration count); the calling
  // thread is the final runner. Iterations are claimed one at a time
  // from the atomic counter, which load-balances heterogeneous case
  // costs (e.g. converging vs. diverging power-flow cases).
  size_t runners = std::min(workers_.size(), n - 1);
  for (size_t r = 0; r < runners; ++r) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();

  MutexLock lock(state->mu);
  while (state->done != state->n) state->done_cv.Wait(state->mu);
  return state->error;
}

}  // namespace phasorwatch
