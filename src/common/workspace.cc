#include "common/workspace.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "obs/metrics.h"

namespace phasorwatch {
namespace {

// First chunk sized for a 30-bus detect pass so small systems never
// grow past one chunk; doubling from there reaches 118-bus scale in a
// few warm-up allocations.
constexpr size_t kInitialChunkDoubles = 4096;

// Cross-thread high-water mark in bytes, mirrored into the
// workspace.bytes_high_water gauge. Monotone max: per-thread arenas
// race only to publish a larger footprint, and losing a race to an
// equal-or-larger value is fine for a diagnostic.
std::atomic<size_t> g_bytes_high_water{0};

void PublishHighWater(size_t bytes) {
  size_t prev = g_bytes_high_water.load(std::memory_order_relaxed);
  while (bytes > prev && !g_bytes_high_water.compare_exchange_weak(
                             prev, bytes, std::memory_order_relaxed)) {
  }
  if (bytes >= prev) {
    PW_OBS_GAUGE_SET("workspace.bytes_high_water",
                     static_cast<double>(
                         g_bytes_high_water.load(std::memory_order_relaxed)));
  }
}

}  // namespace

double* Workspace::Alloc(size_t n) {
  if (n == 0) {
    // A distinct non-null pointer is not required; hand back the
    // current cursor without bumping.
    static double dummy = 0.0;
    return &dummy;
  }
  if (chunks_.empty()) AddChunk(n);
  // Advance through already-owned chunks (rewound frames leave later
  // chunks empty) before growing the arena.
  while (chunks_[cur_].cap - chunks_[cur_].used < n) {
    if (cur_ + 1 < chunks_.size()) {
      ++cur_;
      PW_CHECK_EQ(chunks_[cur_].used, 0u);
    } else {
      AddChunk(n);
    }
  }
  Chunk& c = chunks_[cur_];
  double* p = c.data.get() + c.used;
  c.used += n;
  std::fill(p, p + n, 0.0);
  return p;
}

void Workspace::Reset() {
  ++epoch_;
  if (chunks_.size() > 1) {
    // Coalesce: one chunk of the full footprint, so the warmed steady
    // state bumps through contiguous memory and never allocates again.
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.cap;
    chunks_.clear();
    cur_ = 0;
    AddChunk(total);
    chunks_[0].used = 0;
    return;
  }
  for (Chunk& c : chunks_) c.used = 0;
  cur_ = 0;
}

size_t Workspace::used() const {
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.used;
  return total;
}

size_t Workspace::capacity_bytes() const {
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.cap * sizeof(double);
  return total;
}

Workspace& Workspace::PerThread() {
  thread_local Workspace ws;
  return ws;
}

void Workspace::Rewind(size_t chunk, size_t used) {
  PW_CHECK_LT(chunk, chunks_.empty() ? 1 : chunks_.size());
  for (size_t i = chunk + 1; i < chunks_.size(); ++i) chunks_[i].used = 0;
  if (!chunks_.empty()) chunks_[chunk].used = used;
  cur_ = chunk;
}

void Workspace::AddChunk(size_t min_doubles) {
  size_t cap = chunks_.empty() ? kInitialChunkDoubles
                               : chunks_.back().cap * 2;
  cap = std::max(cap, min_doubles);
  Chunk c;
  c.data = std::make_unique<double[]>(cap);
  c.cap = cap;
  chunks_.push_back(std::move(c));
  cur_ = chunks_.size() - 1;
  PublishHighWater(capacity_bytes());
}

}  // namespace phasorwatch
