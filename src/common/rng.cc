#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace phasorwatch {
namespace {

// SplitMix64, used only to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state would lock the generator at zero; SplitMix64 cannot
  // produce four consecutive zeros, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  PW_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % n;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; Uniform() can return exactly 0, so flip to (0, 1].
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  PW_CHECK_LE(k, n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: after k swaps the first k entries are the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ull); }

Rng Rng::Fork(uint64_t seed, uint64_t stream) {
  // Two SplitMix64 steps over a mix of the pair: the first finalizes
  // `seed`, the second decorrelates neighboring stream indices. The
  // golden-ratio offset keeps (seed, 0) distinct from Rng(seed).
  uint64_t x = seed ^ (stream * 0xBF58476D1CE4E5B9ull) ^
               0x94D049BB133111EBull;
  uint64_t child = SplitMix64(x);
  child ^= SplitMix64(x);
  return Rng(child);
}

}  // namespace phasorwatch
