#ifndef PHASORWATCH_COMMON_STATUS_H_
#define PHASORWATCH_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace phasorwatch {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kNotConverged,   ///< Iterative solver exhausted its iteration budget.
  kSingular,       ///< A matrix factorization hit a (near-)singular pivot.
  kIslanded,       ///< A grid operation would disconnect the network.
  kDataMissing,    ///< Required measurements are unavailable.
  /// A bounded resource (queue slot, quota) is full; retry later or
  /// shed load. Used for fleet-ingest backpressure (docs/FLEET.md).
  kResourceExhausted,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation without a payload.
///
/// A default-constructed Status is OK. Errors carry a code and a message.
/// Statuses are cheap to copy (OK carries no allocation).
///
/// [[nodiscard]] at class level: silently dropping a Status loses the
/// error it carries, so every call site must consume or explicitly
/// discard it. Public APIs additionally carry PW_NODISCARD on their
/// declarations (enforced by tools/pw_lint.py).
class PW_NODISCARD Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  PW_NODISCARD static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  PW_NODISCARD static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  PW_NODISCARD static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  PW_NODISCARD static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  PW_NODISCARD static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  PW_NODISCARD static Status Singular(std::string msg) {
    return Status(StatusCode::kSingular, std::move(msg));
  }
  PW_NODISCARD static Status Islanded(std::string msg) {
    return Status(StatusCode::kIslanded, std::move(msg));
  }
  PW_NODISCARD static Status DataMissing(std::string msg) {
    return Status(StatusCode::kDataMissing, std::move(msg));
  }
  PW_NODISCARD static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  PW_NODISCARD static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  PW_NODISCARD bool ok() const { return code_ == StatusCode::kOk; }
  PW_NODISCARD StatusCode code() const { return code_; }
  PW_NODISCARD const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr but dependency-free. [[nodiscard]] at class level for
/// the same reason as Status: a dropped Result drops its error.
template <typename T>
class PW_NODISCARD Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return value;` or `return Status::...;` directly.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    // An OK status without a value is a bug at the call site.
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  PW_NODISCARD bool ok() const { return std::holds_alternative<T>(data_); }

  PW_NODISCARD Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define PW_RETURN_IF_ERROR(expr)                        \
  do {                                                  \
    ::phasorwatch::Status pw_status_ = (expr);          \
    if (!pw_status_.ok()) return pw_status_;            \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status,
/// otherwise moves the value into `lhs`.
#define PW_STATUS_CONCAT_INNER_(a, b) a##b
#define PW_STATUS_CONCAT_(a, b) PW_STATUS_CONCAT_INNER_(a, b)
#define PW_ASSIGN_OR_RETURN(lhs, expr) \
  PW_ASSIGN_OR_RETURN_IMPL_(PW_STATUS_CONCAT_(pw_result_, __LINE__), lhs, expr)
#define PW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_STATUS_H_
