#ifndef PHASORWATCH_COMMON_THREAD_POOL_H_
#define PHASORWATCH_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/sync.h"

namespace phasorwatch {

/// Resolves a requested parallelism degree into an effective thread
/// count:
///   - the PW_THREADS environment variable, when set to a parseable
///     value, overrides `requested` (so operators can force a run
///     serial or wide without touching configuration structs);
///   - 0 means "one thread per hardware core" (hardware_concurrency);
///   - the result is clamped to >= 1 (1 = the legacy serial path).
size_t ResolveParallelism(size_t requested);

/// Fixed-size worker pool for the coarse-grained fan-outs of the
/// pipeline (per-outage-case simulation, per-line subspace training,
/// per-case evaluation).
///
/// A pool of degree P spawns P-1 worker threads; the thread calling
/// ParallelFor() participates as the P-th executor, so total
/// concurrency is exactly P and a pool of degree 1 runs everything
/// inline on the caller (no threads, no queues — the legacy serial
/// path). Nested ParallelFor() calls from inside a task cannot
/// deadlock: iterations are claimed from a shared atomic counter, so
/// the nested caller simply drains its own loop inline even when every
/// worker is busy.
///
/// Determinism contract: ParallelFor() runs *every* iteration exactly
/// once regardless of errors, and returns the failure with the lowest
/// iteration index (so the reported Status does not depend on thread
/// scheduling). Exceptions escaping a body are captured and converted
/// to StatusCode::kInternal, never propagated across threads.
class ThreadPool {
 public:
  /// Spawns workers for a parallelism degree of `num_threads` (see
  /// class comment; degree <= 1 spawns none).
  explicit ThreadPool(size_t num_threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism degree: worker threads + the participating caller.
  size_t degree() const { return workers_.size() + 1; }

  /// Enqueues one fire-and-forget task. On a degree-1 pool the task
  /// runs inline before Submit returns. Exceptions escaping the task
  /// are swallowed (use ParallelFor for error propagation).
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n) across the pool (caller
  /// included), returning the lowest-index non-OK Status, if any.
  /// Blocks until every iteration has finished.
  PW_NODISCARD Status ParallelFor(size_t n,
                                  const std::function<Status(size_t)>& body);

 private:
  void WorkerLoop();
  /// Pops and runs queued tasks until the queue is empty (helper for
  /// the destructor's drain) — returns after running one task, or
  /// false if the queue was empty.
  bool RunOneTask();

  // pw-lint: allow(sync-discipline) written in ctor, joined in dtor only.
  std::vector<std::thread> workers_;
  Mutex mu_{lock_rank::kThreadPool};
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ PW_GUARDED_BY(mu_);
  bool stopping_ PW_GUARDED_BY(mu_) = false;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_THREAD_POOL_H_
