#include "common/serialize.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/status.h"

namespace phasorwatch {
namespace {

// Serialize through explicit byte copies; the host is little-endian on
// every supported platform, and memcpy avoids aliasing pitfalls.
template <typename T>
void WriteRaw(std::ostream& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.write(bytes, sizeof(T));
}

template <typename T>
Result<T> ReadRaw(std::istream& in, const char* what) {
  char bytes[sizeof(T)];
  in.read(bytes, sizeof(T));
  if (!in.good() && !in.eof()) {
    return Status::InvalidArgument(std::string("stream error reading ") +
                                   what);
  }
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) {
    return Status::InvalidArgument(std::string("truncated input reading ") +
                                   what);
  }
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

}  // namespace

void BinaryWriter::WriteU64(uint64_t value) { WriteRaw(out_, value); }
void BinaryWriter::WriteI64(int64_t value) { WriteRaw(out_, value); }
void BinaryWriter::WriteDouble(double value) { WriteRaw(out_, value); }
void BinaryWriter::WriteBool(bool value) {
  WriteRaw(out_, static_cast<uint8_t>(value ? 1 : 0));
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  out_.write(value.data(), static_cast<std::streamsize>(value.size()));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  for (double v : values) WriteDouble(v);
}

void BinaryWriter::WriteSizeVector(const std::vector<size_t>& values) {
  WriteU64(values.size());
  for (size_t v : values) WriteU64(v);
}

Result<uint64_t> BinaryReader::ReadU64() {
  return ReadRaw<uint64_t>(in_, "u64");
}
Result<int64_t> BinaryReader::ReadI64() { return ReadRaw<int64_t>(in_, "i64"); }
Result<double> BinaryReader::ReadDouble() {
  return ReadRaw<double>(in_, "double");
}

Result<bool> BinaryReader::ReadBool() {
  PW_ASSIGN_OR_RETURN(uint8_t raw, ReadRaw<uint8_t>(in_, "bool"));
  if (raw > 1) {
    return Status::InvalidArgument("corrupt bool value");
  }
  return raw == 1;
}

Result<std::string> BinaryReader::ReadString(size_t max_length) {
  PW_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > max_length) {
    return Status::InvalidArgument("string length exceeds limit");
  }
  std::string value(size, '\0');
  in_.read(value.data(), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    return Status::InvalidArgument("truncated string");
  }
  return value;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector(size_t max_size) {
  PW_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > max_size) {
    return Status::InvalidArgument("vector length exceeds limit");
  }
  std::vector<double> values(size);
  for (uint64_t i = 0; i < size; ++i) {
    PW_ASSIGN_OR_RETURN(values[i], ReadDouble());
  }
  return values;
}

Result<std::vector<size_t>> BinaryReader::ReadSizeVector(size_t max_size) {
  PW_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > max_size) {
    return Status::InvalidArgument("vector length exceeds limit");
  }
  std::vector<size_t> values(size);
  for (uint64_t i = 0; i < size; ++i) {
    PW_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    values[i] = static_cast<size_t>(v);
  }
  return values;
}

// --- JSON text helpers -------------------------------------------------

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

std::string FormatJsonDouble(double value) {
  if (std::isnan(value) || std::isinf(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

namespace {

// Minimal strict recursive-descent JSON validator. Tracks position for
// error messages; depth-limited against pathological nesting.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  Status Validate() {
    PW_RETURN_IF_ERROR(Value(0));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return Status::OK();
  }

  /// Validates one value starting at pos_ and leaves pos_ past it.
  Status Value(int depth) {
    if (depth > 64) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char ch = text_[pos_];
    switch (ch) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  size_t pos() const { return pos_; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  Status String() {
    // pos_ is at the opening quote.
    ++pos_;
    while (pos_ < text_.size()) {
      char ch = text_[pos_];
      if (ch == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(ch) < 0x20) {
        return Error("raw control character in string");
      }
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("truncated escape");
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(
                                            text_[pos_]))) {
              return Error("bad \\u escape");
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return Error("bad escape character");
        }
      }
      ++pos_;
    }
    return Error("unterminated string");
  }

 private:
  Status Object(int depth) {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      PW_RETURN_IF_ERROR(String());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after key");
      }
      ++pos_;
      PW_RETURN_IF_ERROR(Value(depth + 1));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status Array(int depth) {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      PW_RETURN_IF_ERROR(Value(depth + 1));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']'");
    }
  }

  Status Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return Error("bad literal");
    pos_ += len;
    return Status::OK();
  }

  Status Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t int_digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++int_digits;
    }
    if (int_digits == 0) return Error("expected digits");
    // No leading zeros: "0" is fine, "01" is not.
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      return Error("leading zero");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return Error("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return Error("expected exponent digits");
    }
    return Status::OK();
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("malformed JSON at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) {
  return JsonValidator(text).Validate();
}

Result<std::string> JsonObjectField(std::string_view text,
                                    std::string_view key) {
  PW_RETURN_IF_ERROR(ValidateJson(text));
  JsonValidator scanner(text);
  scanner.SkipSpace();
  if (scanner.pos() >= text.size() || text[scanner.pos()] != '{') {
    return Status::InvalidArgument("not a JSON object");
  }
  // Re-walk the (already validated) object byte-wise. Keys in our own
  // output never use escapes, so comparing the undecoded key body is
  // sufficient.
  std::string quoted = "\"" + std::string(key) + "\"";
  // Scan top-level keys: track nesting depth so nested objects' keys
  // are skipped.
  int depth = 0;
  bool in_string = false;
  for (size_t i = text.find('{'); i < text.size(); ++i) {
    char ch = text[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') {
      if (depth == 1 && text.compare(i, quoted.size(), quoted) == 0) {
        size_t after = i + quoted.size();
        while (after < text.size() &&
               std::isspace(static_cast<unsigned char>(text[after]))) {
          ++after;
        }
        if (after < text.size() && text[after] == ':') {
          // Validate-consume the value to find its extent.
          ++after;
          while (after < text.size() &&
                 std::isspace(static_cast<unsigned char>(text[after]))) {
            ++after;
          }
          JsonValidator value_scanner(text.substr(after));
          Status st = value_scanner.Value(0);
          if (!st.ok()) return st;
          return std::string(text.substr(after, value_scanner.pos()));
        }
      }
      in_string = true;
      continue;
    }
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
  }
  return Status::NotFound("key \"" + std::string(key) + "\" not present");
}

}  // namespace phasorwatch
