#include "common/serialize.h"

#include <cstring>

namespace phasorwatch {
namespace {

// Serialize through explicit byte copies; the host is little-endian on
// every supported platform, and memcpy avoids aliasing pitfalls.
template <typename T>
void WriteRaw(std::ostream& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.write(bytes, sizeof(T));
}

template <typename T>
Result<T> ReadRaw(std::istream& in, const char* what) {
  char bytes[sizeof(T)];
  in.read(bytes, sizeof(T));
  if (!in.good() && !in.eof()) {
    return Status::InvalidArgument(std::string("stream error reading ") +
                                   what);
  }
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) {
    return Status::InvalidArgument(std::string("truncated input reading ") +
                                   what);
  }
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

}  // namespace

void BinaryWriter::WriteU64(uint64_t value) { WriteRaw(out_, value); }
void BinaryWriter::WriteI64(int64_t value) { WriteRaw(out_, value); }
void BinaryWriter::WriteDouble(double value) { WriteRaw(out_, value); }
void BinaryWriter::WriteBool(bool value) {
  WriteRaw(out_, static_cast<uint8_t>(value ? 1 : 0));
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  out_.write(value.data(), static_cast<std::streamsize>(value.size()));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  for (double v : values) WriteDouble(v);
}

void BinaryWriter::WriteSizeVector(const std::vector<size_t>& values) {
  WriteU64(values.size());
  for (size_t v : values) WriteU64(v);
}

Result<uint64_t> BinaryReader::ReadU64() {
  return ReadRaw<uint64_t>(in_, "u64");
}
Result<int64_t> BinaryReader::ReadI64() { return ReadRaw<int64_t>(in_, "i64"); }
Result<double> BinaryReader::ReadDouble() {
  return ReadRaw<double>(in_, "double");
}

Result<bool> BinaryReader::ReadBool() {
  PW_ASSIGN_OR_RETURN(uint8_t raw, ReadRaw<uint8_t>(in_, "bool"));
  if (raw > 1) {
    return Status::InvalidArgument("corrupt bool value");
  }
  return raw == 1;
}

Result<std::string> BinaryReader::ReadString(size_t max_length) {
  PW_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > max_length) {
    return Status::InvalidArgument("string length exceeds limit");
  }
  std::string value(size, '\0');
  in_.read(value.data(), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    return Status::InvalidArgument("truncated string");
  }
  return value;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector(size_t max_size) {
  PW_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > max_size) {
    return Status::InvalidArgument("vector length exceeds limit");
  }
  std::vector<double> values(size);
  for (uint64_t i = 0; i < size; ++i) {
    PW_ASSIGN_OR_RETURN(values[i], ReadDouble());
  }
  return values;
}

Result<std::vector<size_t>> BinaryReader::ReadSizeVector(size_t max_size) {
  PW_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > max_size) {
    return Status::InvalidArgument("vector length exceeds limit");
  }
  std::vector<size_t> values(size);
  for (uint64_t i = 0; i < size; ++i) {
    PW_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    values[i] = static_cast<size_t>(v);
  }
  return values;
}

}  // namespace phasorwatch
