#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace phasorwatch {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace phasorwatch
