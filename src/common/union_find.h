#ifndef PHASORWATCH_COMMON_UNION_FIND_H_
#define PHASORWATCH_COMMON_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace phasorwatch {

/// Disjoint-set forest with union by rank and path halving. Used for
/// grid connectivity and islanding checks.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0), components_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false if already joined.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --components_;
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  size_t NumComponents() const { return components_; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> rank_;
  size_t components_;
};

}  // namespace phasorwatch

#endif  // PHASORWATCH_COMMON_UNION_FIND_H_
