#ifndef PHASORWATCH_GRID_SYNTHETIC_H_
#define PHASORWATCH_GRID_SYNTHETIC_H_

#include <string>

#include "common/check.h"
#include "common/status.h"
#include "grid/grid.h"

namespace phasorwatch::grid {

/// Parameters for the deterministic synthetic-grid generator. Defaults
/// mimic transmission-level statistics: average nodal degree ~3, meshed
/// but locally sparse topology, 60-70% of buses carrying load, ~15%
/// hosting generation sized to cover the load with margin.
struct SyntheticGridOptions {
  std::string name = "synthetic";
  size_t num_buses = 57;
  size_t num_lines = 80;     ///< must be >= num_buses (backbone + chords)
  uint64_t seed = 1;
  double load_fraction = 0.45;       ///< fraction of buses with demand
  double gen_fraction = 0.18;        ///< fraction of buses with generation
  double min_load_mw = 3.0;
  double max_load_mw = 60.0;
  double gen_margin = 1.08;          ///< total gen = margin * total load
  double mean_x = 0.10;              ///< mean series reactance (pu)
  double r_over_x = 0.30;            ///< resistance-to-reactance ratio
  double charging_b = 0.02;          ///< mean total line charging (pu)
};

/// Builds a connected, meshed synthetic grid.
///
/// Construction: scatter buses in the unit square (seeded), connect them
/// with a geometric spanning tree (locality like real grids), then add
/// the shortest remaining bus pairs as chord lines until `num_lines` is
/// reached. Line impedances scale with geometric length around `mean_x`.
/// The result always has exactly `num_buses` buses and `num_lines`
/// distinct lines, one slack bus, and balanced load/generation.
PW_NODISCARD Result<Grid> BuildSyntheticGrid(
    const SyntheticGridOptions& options);

}  // namespace phasorwatch::grid

#endif  // PHASORWATCH_GRID_SYNTHETIC_H_
