#ifndef PHASORWATCH_GRID_SYNTHETIC_H_
#define PHASORWATCH_GRID_SYNTHETIC_H_

#include <string>

#include "common/check.h"
#include "common/status.h"
#include "grid/grid.h"

namespace phasorwatch::grid {

/// Parameters for the deterministic synthetic-grid generator. Defaults
/// mimic transmission-level statistics: average nodal degree ~3, meshed
/// but locally sparse topology, 60-70% of buses carrying load, ~15%
/// hosting generation sized to cover the load with margin.
struct SyntheticGridOptions {
  std::string name = "synthetic";
  size_t num_buses = 57;
  size_t num_lines = 80;     ///< must be >= num_buses (backbone + chords)
  uint64_t seed = 1;
  double load_fraction = 0.45;       ///< fraction of buses with demand
  double gen_fraction = 0.18;        ///< fraction of buses with generation
  double min_load_mw = 3.0;
  double max_load_mw = 60.0;
  double gen_margin = 1.08;          ///< total gen = margin * total load
  double mean_x = 0.10;              ///< mean series reactance (pu)
  double r_over_x = 0.30;            ///< resistance-to-reactance ratio
  double charging_b = 0.02;          ///< mean total line charging (pu)
};

/// Builds a connected, meshed synthetic grid.
///
/// Construction: scatter buses in the unit square (seeded), connect them
/// with a geometric spanning tree (locality like real grids), then add
/// the shortest remaining bus pairs as chord lines until `num_lines` is
/// reached. Line impedances scale with geometric length around `mean_x`.
/// The result always has exactly `num_buses` buses and `num_lines`
/// distinct lines, one slack bus, and balanced load/generation.
PW_NODISCARD Result<Grid> BuildSyntheticGrid(
    const SyntheticGridOptions& options);

/// Parameters for the ring-of-meshes generator behind the 300/1000-bus
/// scale studies (docs/SPARSE.md). The grid is `num_regions` regional
/// meshes placed around a ring — each region built with the same
/// geometric MST + chord construction as BuildSyntheticGrid, from its
/// own Rng::Fork stream — joined by `ties_per_boundary` tie lines
/// between geometrically nearest buses of neighbouring regions. The
/// ring keeps the whole grid 2-edge-connected across regions while the
/// Ybus stays as sparse as a real interconnection (average degree ~3
/// regardless of size).
struct RingOfMeshesOptions {
  std::string name = "ring-of-meshes";
  size_t num_regions = 10;
  size_t buses_per_region = 30;
  double lines_per_bus = 1.4;    ///< per-region line budget per bus
  size_t ties_per_boundary = 2;  ///< lines joining adjacent regions
  uint64_t seed = 1;
  double load_fraction = 0.45;
  double gen_fraction = 0.18;
  double min_load_mw = 3.0;
  double max_load_mw = 60.0;
  double gen_margin = 1.08;
  double mean_x = 0.10;
  double r_over_x = 0.30;
  double charging_b = 0.02;
};

/// Builds the ring-of-meshes grid. Deterministic in `options.seed`:
/// every region and every parameter pass draws from its own forked
/// stream, so regions are statistically independent but reproducible.
/// Feasibility is conditioned the same way as BuildSyntheticGrid (DC
/// angle-spread rescaling) but through the sparse LU, so construction
/// stays cheap at 1000+ buses.
PW_NODISCARD Result<Grid> BuildRingOfMeshesGrid(
    const RingOfMeshesOptions& options);

/// 300-bus preset (10 regions x 30 buses): the smallest grid the
/// sparse-path thresholds route through CSR by default. Used by the
/// scale benchmarks (BENCH_sparse.json) and the 300-bus golden table.
PW_NODISCARD Result<Grid> Synthetic300Bus(uint64_t seed = 1);

/// 1000-bus preset (20 regions x 50 buses) for headroom studies.
PW_NODISCARD Result<Grid> Synthetic1000Bus(uint64_t seed = 1);

}  // namespace phasorwatch::grid

#endif  // PHASORWATCH_GRID_SYNTHETIC_H_
