#ifndef PHASORWATCH_GRID_IEEE_CASES_H_
#define PHASORWATCH_GRID_IEEE_CASES_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "grid/grid.h"

namespace phasorwatch::grid {

/// IEEE 14-bus test system (20 lines), from the standard power-systems
/// test-case archive parameters.
PW_NODISCARD Result<Grid> IeeeCase14();

/// IEEE 30-bus test system (41 lines).
PW_NODISCARD Result<Grid> IeeeCase30();

/// IEEE-57-like test system: 57 buses / 80 lines, generated
/// deterministically with realistic electrical parameters (see
/// DESIGN.md §4 — the exact archive tables are not available offline).
PW_NODISCARD Result<Grid> IeeeCase57();

/// IEEE-118-like test system: 118 buses / 186 lines, generated
/// deterministically (same substitution as IeeeCase57).
PW_NODISCARD Result<Grid> IeeeCase118();

/// All four evaluation systems in paper order (14, 30, 57, 118).
std::vector<Grid> AllEvaluationSystems();

/// Looks up one of the evaluation systems by bus count.
PW_NODISCARD Result<Grid> EvaluationSystem(int num_buses);

}  // namespace phasorwatch::grid

#endif  // PHASORWATCH_GRID_IEEE_CASES_H_
