#include "grid/grid.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/status.h"
#include "common/union_find.h"

namespace phasorwatch::grid {
namespace {

constexpr double kDegToRad = M_PI / 180.0;

/// Per-branch π-model admittance contributions, exactly as the dense
/// builder stamps them. Split out so the sparse builder and the
/// outage patch accumulate bit-identical values.
struct BranchStamp {
  linalg::Complex ff, tt, ft, tf;
};

BranchStamp StampBranch(const Branch& br) {
  linalg::Complex ys = 1.0 / linalg::Complex(br.r, br.x);
  linalg::Complex charging(0.0, br.b / 2.0);
  double tap = br.tap == 0.0 ? 1.0 : br.tap;
  linalg::Complex ratio =
      tap * std::exp(linalg::Complex(0.0, br.shift_deg * kDegToRad));
  BranchStamp s;
  s.ff = (ys + charging) / (tap * tap);
  s.tt = ys + charging;
  s.ft = -ys / std::conj(ratio);
  s.tf = -ys / ratio;
  return s;
}

}  // namespace

Result<Grid> Grid::Create(std::string name, std::vector<Bus> buses,
                          std::vector<Branch> branches, double base_mva) {
  if (buses.empty()) {
    return Status::InvalidArgument("grid requires at least one bus");
  }
  if (base_mva <= 0.0) {
    return Status::InvalidArgument("base MVA must be positive");
  }

  Grid g;
  g.name_ = std::move(name);
  g.base_mva_ = base_mva;
  g.buses_ = std::move(buses);
  g.branches_ = std::move(branches);

  // Index external ids and find the slack bus.
  std::map<int, size_t> index;
  size_t slack_count = 0;
  for (size_t i = 0; i < g.buses_.size(); ++i) {
    const Bus& b = g.buses_[i];
    if (!index.emplace(b.id, i).second) {
      return Status::InvalidArgument("duplicate bus id " +
                                     std::to_string(b.id));
    }
    if (b.type == BusType::kSlack) {
      g.slack_ = i;
      ++slack_count;
    }
  }
  if (slack_count != 1) {
    return Status::InvalidArgument("grid must have exactly one slack bus, has " +
                                   std::to_string(slack_count));
  }

  for (const Branch& br : g.branches_) {
    auto from = index.find(br.from_bus);
    auto to = index.find(br.to_bus);
    if (from == index.end() || to == index.end()) {
      return Status::InvalidArgument("branch references unknown bus " +
                                     std::to_string(br.from_bus) + "-" +
                                     std::to_string(br.to_bus));
    }
    if (from->second == to->second) {
      return Status::InvalidArgument("self-loop branch at bus " +
                                     std::to_string(br.from_bus));
    }
    if (br.x <= 0.0) {
      return Status::InvalidArgument("branch " + std::to_string(br.from_bus) +
                                     "-" + std::to_string(br.to_bus) +
                                     " must have positive reactance");
    }
    if (br.r < 0.0) {
      return Status::InvalidArgument("branch " + std::to_string(br.from_bus) +
                                     "-" + std::to_string(br.to_bus) +
                                     " has negative resistance");
    }
  }

  g.RebuildDerived();
  if (!g.IsConnected()) {
    return Status::InvalidArgument("in-service grid topology is disconnected");
  }
  return g;
}

void Grid::RebuildDerived() {
  std::map<int, size_t> index;
  for (size_t i = 0; i < buses_.size(); ++i) index[buses_[i].id] = i;

  adjacency_.assign(buses_.size(), {});
  std::set<LineId> line_set;
  for (const Branch& br : branches_) {
    if (!br.in_service) continue;
    size_t from = index[br.from_bus];
    size_t to = index[br.to_bus];
    if (line_set.insert(LineId(from, to)).second) {
      adjacency_[from].push_back(to);
      adjacency_[to].push_back(from);
    }
  }
  lines_.assign(line_set.begin(), line_set.end());
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
}

Result<size_t> Grid::BusIndex(int external_id) const {
  for (size_t i = 0; i < buses_.size(); ++i) {
    if (buses_[i].id == external_id) return i;
  }
  return Status::NotFound("bus id " + std::to_string(external_id));
}

const std::vector<size_t>& Grid::Neighbors(size_t bus_idx) const {
  PW_CHECK_LT(bus_idx, adjacency_.size());
  return adjacency_[bus_idx];
}

bool Grid::IsConnected() const {
  UnionFind uf(buses_.size());
  for (size_t i = 0; i < adjacency_.size(); ++i) {
    for (size_t j : adjacency_[i]) uf.Union(i, j);
  }
  return uf.NumComponents() == 1;
}

bool Grid::WouldIsland(const LineId& line) const {
  UnionFind uf(buses_.size());
  for (size_t i = 0; i < adjacency_.size(); ++i) {
    for (size_t j : adjacency_[i]) {
      if (LineId(i, j) == line) continue;
      uf.Union(i, j);
    }
  }
  return uf.NumComponents() != 1;
}

Result<Grid> Grid::WithLineOut(const LineId& line,
                               bool allow_islanding) const {
  if (!allow_islanding && WouldIsland(line)) {
    return Status::Islanded("removing " + LineName(line) +
                            " disconnects the grid");
  }
  Grid out = *this;
  bool found = false;
  for (Branch& br : out.branches_) {
    if (!br.in_service) continue;
    auto from = BusIndex(br.from_bus);
    auto to = BusIndex(br.to_bus);
    PW_CHECK(from.ok() && to.ok());
    if (LineId(from.value(), to.value()) == line) {
      br.in_service = false;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("no in-service line " + LineName(line));
  }
  out.name_ = name_ + "\\" + LineName(line);
  out.RebuildDerived();
  return out;
}

linalg::ComplexMatrix Grid::BuildAdmittanceMatrix() const {
  const size_t n = buses_.size();
  linalg::ComplexMatrix ybus(n, n);

  std::map<int, size_t> index;
  for (size_t i = 0; i < n; ++i) index[buses_[i].id] = i;

  for (const Branch& br : branches_) {
    if (!br.in_service) continue;
    size_t f = index[br.from_bus];
    size_t t = index[br.to_bus];
    // Standard π-model with an ideal transformer on the "from" side.
    BranchStamp s = StampBranch(br);
    ybus(f, f) += s.ff;
    ybus(t, t) += s.tt;
    ybus(f, t) += s.ft;
    ybus(t, f) += s.tf;
  }
  for (size_t i = 0; i < n; ++i) {
    ybus(i, i) +=
        linalg::Complex(buses_[i].gs_mw, buses_[i].bs_mvar) / base_mva_;
  }
  return ybus;
}

SparseAdmittance Grid::BuildSparseAdmittance() const {
  const size_t n = buses_.size();
  std::map<int, size_t> index;
  for (size_t i = 0; i < n; ++i) index[buses_[i].id] = i;

  // Pattern over every branch — including out-of-service ones, whose
  // slots stay explicit zeros — plus all diagonals.
  std::vector<std::pair<size_t, size_t>> pattern;
  pattern.reserve(n + 4 * branches_.size());
  for (size_t i = 0; i < n; ++i) pattern.emplace_back(i, i);
  for (const Branch& br : branches_) {
    size_t f = index[br.from_bus];
    size_t t = index[br.to_bus];
    pattern.emplace_back(f, t);
    pattern.emplace_back(t, f);
  }

  SparseAdmittance y;
  y.g = linalg::CsrMatrix::FromPattern(n, n, pattern);
  y.b = linalg::CsrMatrix::FromPattern(n, n, std::move(pattern));

  auto add = [&y](size_t r, size_t c, linalg::Complex v) {
    size_t slot = y.g.EntrySlot(r, c);
    y.g.SetValue(slot, y.g.ValueAt(slot) + v.real());
    y.b.SetValue(slot, y.b.ValueAt(slot) + v.imag());
  };
  for (const Branch& br : branches_) {
    if (!br.in_service) continue;
    size_t f = index[br.from_bus];
    size_t t = index[br.to_bus];
    BranchStamp s = StampBranch(br);
    add(f, f, s.ff);
    add(t, t, s.tt);
    add(f, t, s.ft);
    add(t, f, s.tf);
  }
  for (size_t i = 0; i < n; ++i) {
    add(i, i, linalg::Complex(buses_[i].gs_mw, buses_[i].bs_mvar) / base_mva_);
  }
  return y;
}

Result<YbusPatch> Grid::ApplyLineOutagePatch(SparseAdmittance* ybus,
                                             const LineId& line) const {
  PW_CHECK(ybus != nullptr);
  PW_CHECK_EQ(ybus->g.rows(), buses_.size());
  PW_CHECK_LT(line.i, buses_.size());
  PW_CHECK_LT(line.j, buses_.size());
  std::map<int, size_t> index;
  for (size_t i = 0; i < buses_.size(); ++i) index[buses_[i].id] = i;

  const size_t f = line.i;
  const size_t t = line.j;
  bool any_in_service = false;
  for (const Branch& br : branches_) {
    if (!br.in_service) continue;
    if (LineId(index[br.from_bus], index[br.to_bus]) == line) {
      any_in_service = true;
      break;
    }
  }
  if (!any_in_service) {
    return Status::NotFound("no in-service line " + LineName(line));
  }

  YbusPatch patch;
  patch.line = line;
  patch.slots = {ybus->g.EntrySlot(f, f), ybus->g.EntrySlot(t, t),
                 ybus->g.EntrySlot(f, t), ybus->g.EntrySlot(t, f)};
  for (size_t k = 0; k < 4; ++k) {
    patch.saved_g[k] = ybus->g.ValueAt(patch.slots[k]);
    patch.saved_b[k] = ybus->b.ValueAt(patch.slots[k]);
  }

  // Every branch between the endpoints drops out (WithLineOut
  // semantics), so the off-diagonals become exact zeros and the two
  // diagonals are re-accumulated from the surviving incident branches
  // — in branch-declaration order, which is what makes the patched
  // values bit-identical to a full rebuild on the outage grid.
  linalg::Complex dff(0.0, 0.0);
  linalg::Complex dtt(0.0, 0.0);
  for (const Branch& br : branches_) {
    if (!br.in_service) continue;
    size_t bf = index[br.from_bus];
    size_t bt = index[br.to_bus];
    if (LineId(bf, bt) == line) continue;
    if (bf != f && bt != f && bf != t && bt != t) continue;
    BranchStamp s = StampBranch(br);
    if (bf == f) dff += s.ff;
    if (bt == f) dff += s.tt;
    if (bf == t) dtt += s.ff;
    if (bt == t) dtt += s.tt;
  }
  dff += linalg::Complex(buses_[f].gs_mw, buses_[f].bs_mvar) / base_mva_;
  dtt += linalg::Complex(buses_[t].gs_mw, buses_[t].bs_mvar) / base_mva_;

  ybus->g.SetValue(patch.slots[0], dff.real());
  ybus->b.SetValue(patch.slots[0], dff.imag());
  ybus->g.SetValue(patch.slots[1], dtt.real());
  ybus->b.SetValue(patch.slots[1], dtt.imag());
  ybus->g.SetValue(patch.slots[2], 0.0);
  ybus->b.SetValue(patch.slots[2], 0.0);
  ybus->g.SetValue(patch.slots[3], 0.0);
  ybus->b.SetValue(patch.slots[3], 0.0);
  return patch;
}

void Grid::RevertLineOutagePatch(SparseAdmittance* ybus,
                                 const YbusPatch& patch) const {
  PW_CHECK(ybus != nullptr);
  PW_CHECK_EQ(ybus->g.rows(), buses_.size());
  for (size_t k = 0; k < 4; ++k) {
    ybus->g.SetValue(patch.slots[k], patch.saved_g[k]);
    ybus->b.SetValue(patch.slots[k], patch.saved_b[k]);
  }
}

linalg::Matrix Grid::BuildSusceptanceLaplacian() const {
  const size_t n = buses_.size();
  linalg::Matrix lap(n, n);
  std::map<int, size_t> index;
  for (size_t i = 0; i < n; ++i) index[buses_[i].id] = i;
  for (const Branch& br : branches_) {
    if (!br.in_service) continue;
    size_t f = index[br.from_bus];
    size_t t = index[br.to_bus];
    double w = 1.0 / br.x;
    lap(f, f) += w;
    lap(t, t) += w;
    lap(f, t) -= w;
    lap(t, f) -= w;
  }
  return lap;
}

double Grid::TotalLoadMw() const {
  double total = 0.0;
  for (const Bus& b : buses_) total += b.pd_mw;
  return total;
}

double Grid::TotalGenMw() const {
  double total = 0.0;
  for (const Bus& b : buses_) total += b.pg_mw;
  return total;
}

std::string Grid::LineName(const LineId& line) const {
  PW_CHECK_LT(line.i, buses_.size());
  PW_CHECK_LT(line.j, buses_.size());
  return "line " + std::to_string(buses_[line.i].id) + "-" +
         std::to_string(buses_[line.j].id);
}

}  // namespace phasorwatch::grid
