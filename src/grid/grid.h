#ifndef PHASORWATCH_GRID_GRID_H_
#define PHASORWATCH_GRID_GRID_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "linalg/complex_matrix.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace phasorwatch::grid {

/// Power-flow role of a bus.
enum class BusType {
  kSlack,  ///< reference bus: fixed |V| and angle, balances the system
  kPV,     ///< generator bus: fixed P injection and |V|
  kPQ,     ///< load bus: fixed P and Q injection
};

/// One power node (generator, load, or substation). Quantities follow the
/// IEEE common data format: powers in MW/MVAr, voltages in per-unit.
struct Bus {
  int id = 0;                     ///< external 1-based bus number
  BusType type = BusType::kPQ;
  double pd_mw = 0.0;             ///< active power demand
  double qd_mvar = 0.0;           ///< reactive power demand
  double gs_mw = 0.0;             ///< shunt conductance (MW at V=1 pu)
  double bs_mvar = 0.0;           ///< shunt susceptance (MVAr at V=1 pu)
  double pg_mw = 0.0;             ///< scheduled generation (PV/slack)
  double qg_mvar = 0.0;           ///< generator reactive output (solved)
  double vm_setpoint = 1.0;       ///< |V| setpoint for PV/slack buses
  double base_kv = 0.0;
  /// Generator reactive capability (MVAr). Equal values (the default)
  /// mean "no limit declared"; the solver then never switches the bus.
  double qmax_mvar = 0.0;
  double qmin_mvar = 0.0;

  bool HasQLimits() const { return qmax_mvar > qmin_mvar; }
};

/// One transmission line or transformer branch (π-model, per-unit).
struct Branch {
  int from_bus = 0;        ///< external id of the from end
  int to_bus = 0;          ///< external id of the to end
  double r = 0.0;          ///< series resistance (pu)
  double x = 0.0;          ///< series reactance (pu)
  double b = 0.0;          ///< total line-charging susceptance (pu)
  double tap = 0.0;        ///< off-nominal tap ratio; 0 means 1.0 (a line)
  double shift_deg = 0.0;  ///< phase-shift angle (degrees)
  bool in_service = true;
};

/// Identifies a power line by the *internal* indices of its endpoints.
/// Normalized so that i <= j; comparable and hashable for use in the
/// outage sets F and F-hat.
struct LineId {
  size_t i = 0;
  size_t j = 0;

  LineId() = default;
  LineId(size_t a, size_t b) : i(a < b ? a : b), j(a < b ? b : a) {}

  friend bool operator==(const LineId&, const LineId&) = default;
  friend auto operator<=>(const LineId&, const LineId&) = default;
};

/// Sparse bus admittance matrix: real and imaginary parts of Ybus in
/// CSR form with one shared pattern. The pattern covers every branch
/// — in service or not — plus every diagonal, so out-of-service
/// branches hold explicit zero slots. That slot reservation is what
/// turns a single-line-outage study into a 4-entry value patch
/// (Grid::ApplyLineOutagePatch) instead of a full rebuild.
struct SparseAdmittance {
  linalg::CsrMatrix g;  ///< Re(Ybus), per-unit
  linalg::CsrMatrix b;  ///< Im(Ybus), same pattern as g
};

/// Saved entries for reverting a line-outage patch: the four touched
/// slots — (f,f), (t,t), (f,t), (t,f) — and their pre-patch values.
struct YbusPatch {
  LineId line;
  std::array<size_t, 4> slots{};
  std::array<double, 4> saved_g{};
  std::array<double, 4> saved_b{};
};

/// The transmission-level grid graph P(N, E) plus electrical data.
///
/// Buses are addressed internally by dense 0-based indices; external ids
/// from the IEEE case tables are preserved for reporting. The class owns
/// topology queries (neighbors, connectivity, islanding) and the
/// admittance-matrix builder that encodes line status (Eq. 1's Y).
class Grid {
 public:
  /// Validates and indexes the case data. Fails on duplicate/unknown bus
  /// ids, non-positive reactances, missing slack, or a disconnected
  /// in-service topology.
  PW_NODISCARD static Result<Grid> Create(std::string name,
                                          std::vector<Bus> buses,
                                          std::vector<Branch> branches,
                                          double base_mva = 100.0);

  const std::string& name() const { return name_; }
  double base_mva() const { return base_mva_; }

  size_t num_buses() const { return buses_.size(); }
  size_t num_branches() const { return branches_.size(); }
  /// Number of distinct power lines (parallel branches collapse into one
  /// line for outage purposes).
  size_t num_lines() const { return lines_.size(); }

  const std::vector<Bus>& buses() const { return buses_; }
  const std::vector<Branch>& branches() const { return branches_; }
  const Bus& bus(size_t idx) const { return buses_[idx]; }

  /// Internal index for an external bus id.
  PW_NODISCARD Result<size_t> BusIndex(int external_id) const;

  /// Distinct lines as normalized internal-endpoint pairs, sorted.
  const std::vector<LineId>& lines() const { return lines_; }

  /// Internal indices of buses adjacent to `bus_idx` via in-service
  /// branches.
  const std::vector<size_t>& Neighbors(size_t bus_idx) const;

  /// Internal index of the slack bus.
  size_t SlackBus() const { return slack_; }

  /// True if all buses are connected through in-service branches.
  bool IsConnected() const;

  /// True if removing `line` would split the grid (checked on the
  /// in-service topology).
  bool WouldIsland(const LineId& line) const;

  /// Copy of this grid with every branch between the endpoints of `line`
  /// taken out of service. Fails with kIslanded if that disconnects the
  /// grid and `allow_islanding` is false, and with kNotFound if no such
  /// in-service line exists.
  PW_NODISCARD Result<Grid> WithLineOut(const LineId& line,
                                        bool allow_islanding = false) const;

  /// Bus admittance matrix Ybus (per-unit) over in-service branches,
  /// including line charging, taps, phase shifts, and bus shunts.
  linalg::ComplexMatrix BuildAdmittanceMatrix() const;

  /// Sparse Ybus over in-service branches. Values are bit-identical
  /// to BuildAdmittanceMatrix(): contributions are accumulated per
  /// entry in the same branch-declaration order, with bus shunts added
  /// last. The pattern additionally reserves zero slots for
  /// out-of-service branches so outage patches never change it.
  SparseAdmittance BuildSparseAdmittance() const;

  /// Applies the single-line outage of `line` to `ybus` as a branch-
  /// local value patch: the (f,t)/(t,f) off-diagonals drop to zero and
  /// both diagonals are recomputed from the surviving incident
  /// branches in branch-declaration order. The patched matrix is
  /// bit-identical to WithLineOut(line)->BuildSparseAdmittance(); the
  /// grid itself is not modified. Fails with kNotFound when no
  /// in-service branch joins the endpoints.
  PW_NODISCARD Result<YbusPatch> ApplyLineOutagePatch(
      SparseAdmittance* ybus, const LineId& line) const;

  /// Restores the entries saved in `patch` — a bit-exact revert of
  /// ApplyLineOutagePatch.
  void RevertLineOutagePatch(SparseAdmittance* ybus,
                             const YbusPatch& patch) const;

  /// Weighted graph Laplacian using 1/x as edge weights (the DC
  /// approximation's B' matrix without slack reduction).
  linalg::Matrix BuildSusceptanceLaplacian() const;

  /// Total in-service demand (MW).
  double TotalLoadMw() const;
  /// Total scheduled generation (MW).
  double TotalGenMw() const;

  /// Human-readable name like "line 4-7" using external bus ids.
  std::string LineName(const LineId& line) const;

 private:
  Grid() = default;
  void RebuildDerived();

  std::string name_;
  double base_mva_ = 100.0;
  std::vector<Bus> buses_;
  std::vector<Branch> branches_;
  std::vector<LineId> lines_;
  std::vector<std::vector<size_t>> adjacency_;
  size_t slack_ = 0;
};

}  // namespace phasorwatch::grid

#endif  // PHASORWATCH_GRID_GRID_H_
