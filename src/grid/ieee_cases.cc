#include "grid/ieee_cases.h"

#include "common/check.h"
#include "common/status.h"
#include "grid/synthetic.h"

namespace phasorwatch::grid {
namespace {

Bus MakeBus(int id, BusType type, double pd, double qd, double pg, double vm,
            double bs = 0.0, double qmin = 0.0, double qmax = 0.0) {
  Bus b;
  b.id = id;
  b.type = type;
  b.pd_mw = pd;
  b.qd_mvar = qd;
  b.pg_mw = pg;
  b.vm_setpoint = vm;
  b.bs_mvar = bs;
  b.qmin_mvar = qmin;
  b.qmax_mvar = qmax;
  return b;
}

Branch MakeBranch(int from, int to, double r, double x, double b,
                  double tap = 0.0) {
  Branch br;
  br.from_bus = from;
  br.to_bus = to;
  br.r = r;
  br.x = x;
  br.b = b;
  br.tap = tap;
  return br;
}

}  // namespace

Result<Grid> IeeeCase14() {
  std::vector<Bus> buses = {
      MakeBus(1, BusType::kSlack, 0.0, 0.0, 232.4, 1.060),
      MakeBus(2, BusType::kPV, 21.7, 12.7, 40.0, 1.045, 0.0, -40.0, 50.0),
      MakeBus(3, BusType::kPV, 94.2, 19.0, 0.0, 1.010, 0.0, 0.0, 40.0),
      MakeBus(4, BusType::kPQ, 47.8, -3.9, 0.0, 1.0),
      MakeBus(5, BusType::kPQ, 7.6, 1.6, 0.0, 1.0),
      MakeBus(6, BusType::kPV, 11.2, 7.5, 0.0, 1.070, 0.0, -6.0, 24.0),
      MakeBus(7, BusType::kPQ, 0.0, 0.0, 0.0, 1.0),
      MakeBus(8, BusType::kPV, 0.0, 0.0, 0.0, 1.090, 0.0, -6.0, 24.0),
      MakeBus(9, BusType::kPQ, 29.5, 16.6, 0.0, 1.0, /*bs=*/19.0),
      MakeBus(10, BusType::kPQ, 9.0, 5.8, 0.0, 1.0),
      MakeBus(11, BusType::kPQ, 3.5, 1.8, 0.0, 1.0),
      MakeBus(12, BusType::kPQ, 6.1, 1.6, 0.0, 1.0),
      MakeBus(13, BusType::kPQ, 13.5, 5.8, 0.0, 1.0),
      MakeBus(14, BusType::kPQ, 14.9, 5.0, 0.0, 1.0),
  };
  std::vector<Branch> branches = {
      MakeBranch(1, 2, 0.01938, 0.05917, 0.0528),
      MakeBranch(1, 5, 0.05403, 0.22304, 0.0492),
      MakeBranch(2, 3, 0.04699, 0.19797, 0.0438),
      MakeBranch(2, 4, 0.05811, 0.17632, 0.0340),
      MakeBranch(2, 5, 0.05695, 0.17388, 0.0346),
      MakeBranch(3, 4, 0.06701, 0.17103, 0.0128),
      MakeBranch(4, 5, 0.01335, 0.04211, 0.0),
      MakeBranch(4, 7, 0.0, 0.20912, 0.0, 0.978),
      MakeBranch(4, 9, 0.0, 0.55618, 0.0, 0.969),
      MakeBranch(5, 6, 0.0, 0.25202, 0.0, 0.932),
      MakeBranch(6, 11, 0.09498, 0.19890, 0.0),
      MakeBranch(6, 12, 0.12291, 0.25581, 0.0),
      MakeBranch(6, 13, 0.06615, 0.13027, 0.0),
      MakeBranch(7, 8, 0.0, 0.17615, 0.0),
      MakeBranch(7, 9, 0.0, 0.11001, 0.0),
      MakeBranch(9, 10, 0.03181, 0.08450, 0.0),
      MakeBranch(9, 14, 0.12711, 0.27038, 0.0),
      MakeBranch(10, 11, 0.08205, 0.19207, 0.0),
      MakeBranch(12, 13, 0.22092, 0.19988, 0.0),
      MakeBranch(13, 14, 0.17093, 0.34802, 0.0),
  };
  return Grid::Create("ieee14", std::move(buses), std::move(branches));
}

Result<Grid> IeeeCase30() {
  std::vector<Bus> buses = {
      MakeBus(1, BusType::kSlack, 0.0, 0.0, 260.2, 1.060),
      MakeBus(2, BusType::kPV, 21.7, 12.7, 40.0, 1.043),
      MakeBus(3, BusType::kPQ, 2.4, 1.2, 0.0, 1.0),
      MakeBus(4, BusType::kPQ, 7.6, 1.6, 0.0, 1.0),
      MakeBus(5, BusType::kPV, 94.2, 19.0, 0.0, 1.010),
      MakeBus(6, BusType::kPQ, 0.0, 0.0, 0.0, 1.0),
      MakeBus(7, BusType::kPQ, 22.8, 10.9, 0.0, 1.0),
      MakeBus(8, BusType::kPV, 30.0, 30.0, 0.0, 1.010),
      MakeBus(9, BusType::kPQ, 0.0, 0.0, 0.0, 1.0),
      MakeBus(10, BusType::kPQ, 5.8, 2.0, 0.0, 1.0, /*bs=*/19.0),
      MakeBus(11, BusType::kPV, 0.0, 0.0, 0.0, 1.082),
      MakeBus(12, BusType::kPQ, 11.2, 7.5, 0.0, 1.0),
      MakeBus(13, BusType::kPV, 0.0, 0.0, 0.0, 1.071),
      MakeBus(14, BusType::kPQ, 6.2, 1.6, 0.0, 1.0),
      MakeBus(15, BusType::kPQ, 8.2, 2.5, 0.0, 1.0),
      MakeBus(16, BusType::kPQ, 3.5, 1.8, 0.0, 1.0),
      MakeBus(17, BusType::kPQ, 9.0, 5.8, 0.0, 1.0),
      MakeBus(18, BusType::kPQ, 3.2, 0.9, 0.0, 1.0),
      MakeBus(19, BusType::kPQ, 9.5, 3.4, 0.0, 1.0),
      MakeBus(20, BusType::kPQ, 2.2, 0.7, 0.0, 1.0),
      MakeBus(21, BusType::kPQ, 17.5, 11.2, 0.0, 1.0),
      MakeBus(22, BusType::kPQ, 0.0, 0.0, 0.0, 1.0),
      MakeBus(23, BusType::kPQ, 3.2, 1.6, 0.0, 1.0),
      MakeBus(24, BusType::kPQ, 8.7, 6.7, 0.0, 1.0, /*bs=*/4.3),
      MakeBus(25, BusType::kPQ, 0.0, 0.0, 0.0, 1.0),
      MakeBus(26, BusType::kPQ, 3.5, 2.3, 0.0, 1.0),
      MakeBus(27, BusType::kPQ, 0.0, 0.0, 0.0, 1.0),
      MakeBus(28, BusType::kPQ, 0.0, 0.0, 0.0, 1.0),
      MakeBus(29, BusType::kPQ, 2.4, 0.9, 0.0, 1.0),
      MakeBus(30, BusType::kPQ, 10.6, 1.9, 0.0, 1.0),
  };
  std::vector<Branch> branches = {
      MakeBranch(1, 2, 0.0192, 0.0575, 0.0528),
      MakeBranch(1, 3, 0.0452, 0.1652, 0.0408),
      MakeBranch(2, 4, 0.0570, 0.1737, 0.0368),
      MakeBranch(3, 4, 0.0132, 0.0379, 0.0084),
      MakeBranch(2, 5, 0.0472, 0.1983, 0.0418),
      MakeBranch(2, 6, 0.0581, 0.1763, 0.0374),
      MakeBranch(4, 6, 0.0119, 0.0414, 0.0090),
      MakeBranch(5, 7, 0.0460, 0.1160, 0.0204),
      MakeBranch(6, 7, 0.0267, 0.0820, 0.0170),
      MakeBranch(6, 8, 0.0120, 0.0420, 0.0090),
      MakeBranch(6, 9, 0.0, 0.2080, 0.0, 0.978),
      MakeBranch(6, 10, 0.0, 0.5560, 0.0, 0.969),
      MakeBranch(9, 11, 0.0, 0.2080, 0.0),
      MakeBranch(9, 10, 0.0, 0.1100, 0.0),
      MakeBranch(4, 12, 0.0, 0.2560, 0.0, 0.932),
      MakeBranch(12, 13, 0.0, 0.1400, 0.0),
      MakeBranch(12, 14, 0.1231, 0.2559, 0.0),
      MakeBranch(12, 15, 0.0662, 0.1304, 0.0),
      MakeBranch(12, 16, 0.0945, 0.1987, 0.0),
      MakeBranch(14, 15, 0.2210, 0.1997, 0.0),
      MakeBranch(16, 17, 0.0524, 0.1923, 0.0),
      MakeBranch(15, 18, 0.1073, 0.2185, 0.0),
      MakeBranch(18, 19, 0.0639, 0.1292, 0.0),
      MakeBranch(19, 20, 0.0340, 0.0680, 0.0),
      MakeBranch(10, 20, 0.0936, 0.2090, 0.0),
      MakeBranch(10, 17, 0.0324, 0.0845, 0.0),
      MakeBranch(10, 21, 0.0348, 0.0749, 0.0),
      MakeBranch(10, 22, 0.0727, 0.1499, 0.0),
      MakeBranch(21, 22, 0.0116, 0.0236, 0.0),
      MakeBranch(15, 23, 0.1000, 0.2020, 0.0),
      MakeBranch(22, 24, 0.1150, 0.1790, 0.0),
      MakeBranch(23, 24, 0.1320, 0.2700, 0.0),
      MakeBranch(24, 25, 0.1885, 0.3292, 0.0),
      MakeBranch(25, 26, 0.2544, 0.3800, 0.0),
      MakeBranch(25, 27, 0.1093, 0.2087, 0.0),
      MakeBranch(28, 27, 0.0, 0.3960, 0.0, 0.968),
      MakeBranch(27, 29, 0.2198, 0.4153, 0.0),
      MakeBranch(27, 30, 0.3202, 0.6027, 0.0),
      MakeBranch(29, 30, 0.2399, 0.4533, 0.0),
      MakeBranch(8, 28, 0.0636, 0.2000, 0.0428),
      MakeBranch(6, 28, 0.0169, 0.0599, 0.0130),
  };
  return Grid::Create("ieee30", std::move(buses), std::move(branches));
}

Result<Grid> IeeeCase57() {
  SyntheticGridOptions opts;
  opts.name = "ieee57";
  opts.num_buses = 57;
  opts.num_lines = 80;
  opts.seed = 5757;
  // Stiffer trunk than the small systems: larger grids interconnect
  // regions through low-impedance corridors, which lets the same angle
  // budget carry realistic power levels.
  opts.mean_x = 0.07;
  return BuildSyntheticGrid(opts);
}

Result<Grid> IeeeCase118() {
  SyntheticGridOptions opts;
  opts.name = "ieee118";
  opts.num_buses = 118;
  opts.num_lines = 186;
  opts.seed = 118118;
  opts.mean_x = 0.045;  // see IeeeCase57
  return BuildSyntheticGrid(opts);
}

std::vector<Grid> AllEvaluationSystems() {
  std::vector<Grid> systems;
  for (auto maker : {IeeeCase14, IeeeCase30, IeeeCase57, IeeeCase118}) {
    auto grid = maker();
    PW_CHECK_MSG(grid.ok(), grid.status().ToString().c_str());
    systems.push_back(std::move(grid).value());
  }
  return systems;
}

Result<Grid> EvaluationSystem(int num_buses) {
  switch (num_buses) {
    case 14:
      return IeeeCase14();
    case 30:
      return IeeeCase30();
    case 57:
      return IeeeCase57();
    case 118:
      return IeeeCase118();
    default:
      return Status::NotFound("no evaluation system with " +
                              std::to_string(num_buses) + " buses");
  }
}

}  // namespace phasorwatch::grid
