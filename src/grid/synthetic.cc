#include "grid/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/union_find.h"
#include "linalg/lu.h"
#include "linalg/sparse.h"

namespace phasorwatch::grid {
namespace {

struct Point {
  double x;
  double y;
};

double Dist(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace

Result<Grid> BuildSyntheticGrid(const SyntheticGridOptions& options) {
  const size_t n = options.num_buses;
  const size_t m = options.num_lines;
  if (n < 3) {
    return Status::InvalidArgument("synthetic grid needs at least 3 buses");
  }
  if (m < n) {
    return Status::InvalidArgument(
        "synthetic grid needs at least num_buses lines for a meshed "
        "topology");
  }
  if (m > n * (n - 1) / 2) {
    return Status::InvalidArgument("more lines requested than bus pairs");
  }

  // pw-lint: allow(rng-discipline) synthetic-grid root seed stream.
  Rng rng(options.seed);

  // 1. Scatter buses in the unit square.
  std::vector<Point> pos(n);
  for (auto& p : pos) p = {rng.Uniform(), rng.Uniform()};

  // 2. Geometric minimum spanning tree (Prim) for the backbone: real
  // transmission lines overwhelmingly connect nearby substations.
  std::set<std::pair<size_t, size_t>> edges;  // normalized (i < j)
  {
    std::vector<bool> in_tree(n, false);
    std::vector<double> best_dist(n, 1e30);
    std::vector<size_t> best_from(n, 0);
    in_tree[0] = true;
    for (size_t i = 1; i < n; ++i) {
      best_dist[i] = Dist(pos[0], pos[i]);
      best_from[i] = 0;
    }
    for (size_t step = 1; step < n; ++step) {
      size_t next = n;
      double next_dist = 1e30;
      for (size_t i = 0; i < n; ++i) {
        if (!in_tree[i] && best_dist[i] < next_dist) {
          next = i;
          next_dist = best_dist[i];
        }
      }
      PW_CHECK_LT(next, n);
      in_tree[next] = true;
      edges.insert({std::min(next, best_from[next]),
                    std::max(next, best_from[next])});
      for (size_t i = 0; i < n; ++i) {
        if (in_tree[i]) continue;
        double d = Dist(pos[next], pos[i]);
        if (d < best_dist[i]) {
          best_dist[i] = d;
          best_from[i] = next;
        }
      }
    }
  }

  // 3. Mesh reinforcement until the line budget is spent. A quarter of
  // the chords are the geometrically shortest unused pairs (the short
  // loops real grids are built with); the rest are medium-distance ties
  // sampled from the next tranche, so loops carry meaningful flow
  // instead of shadowing a 2-hop path — purely-shortest chords produce
  // electrically redundant lines whose outages leave no phasor
  // signature (tuned empirically against detection-signature strength,
  // see DESIGN.md).
  {
    std::vector<std::pair<double, std::pair<size_t, size_t>>> candidates;
    candidates.reserve(n * (n - 1) / 2);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (edges.count({i, j})) continue;
        // Small jitter breaks distance ties deterministically by seed.
        candidates.push_back(
            {Dist(pos[i], pos[j]) * (1.0 + 0.05 * rng.Uniform()), {i, j}});
      }
    }
    std::sort(candidates.begin(), candidates.end());

    // First, lift every degree-1 bus to degree >= 2 with its nearest
    // unused tie: spanning-tree leaves otherwise make their only line a
    // bridge, whose outage islands the grid (an invalid case in the
    // evaluation, so it would waste line budget).
    std::vector<size_t> degree(n, 0);
    for (const auto& [i, j] : edges) {
      ++degree[i];
      ++degree[j];
    }
    for (const auto& [d, e] : candidates) {
      if (edges.size() >= m) break;
      if (degree[e.first] >= 2 && degree[e.second] >= 2) continue;
      if (edges.insert(e).second) {
        ++degree[e.first];
        ++degree[e.second];
      }
    }

    size_t short_budget = (m - edges.size()) / 4;
    size_t next = 0;
    for (; next < candidates.size() && short_budget > 0; ++next) {
      edges.insert(candidates[next].second);
      --short_budget;
    }
    // Medium-distance ties: sample from the next tranche of candidates
    // (up to three times the remaining budget) without replacement.
    std::vector<std::pair<size_t, size_t>> tranche;
    size_t remaining = m - edges.size();
    for (size_t k = next; k < candidates.size() &&
                          tranche.size() < 8 * remaining; ++k) {
      tranche.push_back(candidates[k].second);
    }
    rng.Shuffle(tranche);
    for (const auto& e : tranche) {
      if (edges.size() >= m) break;
      edges.insert(e);
    }
    // Degenerate geometries: fall back to the sorted order.
    for (size_t k = next; k < candidates.size() && edges.size() < m; ++k) {
      edges.insert(candidates[k].second);
    }
  }
  PW_CHECK_EQ(edges.size(), m);

  // 4. Electrical parameters: impedance grows with geometric length.
  double mean_len = 0.0;
  for (const auto& [i, j] : edges) mean_len += Dist(pos[i], pos[j]);
  mean_len /= static_cast<double>(m);

  std::vector<Branch> branches;
  branches.reserve(m);
  for (const auto& [i, j] : edges) {
    double rel = Dist(pos[i], pos[j]) / mean_len;
    Branch br;
    br.from_bus = static_cast<int>(i) + 1;
    br.to_bus = static_cast<int>(j) + 1;
    br.x = std::max(0.01, options.mean_x * rel * rng.Uniform(0.5, 1.8));
    br.r = br.x * options.r_over_x * rng.Uniform(0.7, 1.3);
    br.b = options.charging_b * rel * rng.Uniform(0.5, 1.5);
    branches.push_back(br);
  }

  // 5. Loads and generation. Slack at bus 1; generators at a spread of
  // buses; loads at a random subset.
  std::vector<Bus> buses(n);
  for (size_t i = 0; i < n; ++i) {
    buses[i].id = static_cast<int>(i) + 1;
    buses[i].type = BusType::kPQ;
    buses[i].vm_setpoint = 1.0;
  }

  double total_load = 0.0;
  size_t num_loaded =
      std::max<size_t>(1, static_cast<size_t>(options.load_fraction *
                                              static_cast<double>(n)));
  for (size_t i : rng.SampleWithoutReplacement(n, num_loaded)) {
    buses[i].pd_mw = rng.Uniform(options.min_load_mw, options.max_load_mw);
    buses[i].qd_mvar = buses[i].pd_mw * rng.Uniform(0.2, 0.45);
    total_load += buses[i].pd_mw;
  }

  size_t num_gens = std::max<size_t>(
      2, static_cast<size_t>(options.gen_fraction * static_cast<double>(n)));
  std::vector<size_t> gen_buses = rng.SampleWithoutReplacement(n, num_gens);
  // The slack bus is always a generator; make sure bus 0 is in the set.
  if (std::find(gen_buses.begin(), gen_buses.end(), size_t{0}) ==
      gen_buses.end()) {
    gen_buses[0] = 0;
  }
  double gen_total = total_load * options.gen_margin;
  double gen_each = gen_total / static_cast<double>(gen_buses.size());
  for (size_t idx = 0; idx < gen_buses.size(); ++idx) {
    Bus& b = buses[gen_buses[idx]];
    b.type = gen_buses[idx] == 0 ? BusType::kSlack : BusType::kPV;
    b.pg_mw = gen_each * rng.Uniform(0.7, 1.3);
    b.vm_setpoint = rng.Uniform(1.0, 1.06);
  }

  // 6. Electrical conditioning via the DC approximation.
  //    a) Flow equalization: chords running parallel to stiff short
  //       paths end up carrying no flow, which makes their outages
  //       physically invisible (no phasor signature at all). Stiffen
  //       low-flow lines — engineered grids size parallel corridors to
  //       share load — so every line matters.
  //    b) Feasibility rescaling: shrink all injections until the DC
  //       angle spread is physical, guaranteeing the AC power flow
  //       solves at nominal and moderately stressed loading.
  const double base_mva = 100.0;
  auto solve_dc = [&](const std::vector<Branch>& brs)
      -> Result<linalg::Vector> {
    linalg::Matrix lap(n, n);
    for (const Branch& br : brs) {
      size_t f = static_cast<size_t>(br.from_bus) - 1;
      size_t t = static_cast<size_t>(br.to_bus) - 1;
      double w = 1.0 / br.x;
      lap(f, f) += w;
      lap(t, t) += w;
      lap(f, t) -= w;
      lap(t, f) -= w;
    }
    linalg::Vector p(n);
    double imbalance = 0.0;
    for (size_t i = 1; i < n; ++i) {
      p[i] = (buses[i].pg_mw - buses[i].pd_mw) / base_mva;
      imbalance += p[i];
    }
    p[0] = -imbalance;  // slack absorbs the schedule imbalance
    std::vector<size_t> keep(n - 1);
    for (size_t i = 0; i + 1 < n; ++i) keep[i] = i + 1;
    PW_ASSIGN_OR_RETURN(
        linalg::LuDecomposition lu,
        linalg::LuDecomposition::Factor(lap.SelectSubmatrix(keep, keep)));
    PW_ASSIGN_OR_RETURN(linalg::Vector theta, lu.Solve(p.Gather(keep)));
    linalg::Vector full(n);
    for (size_t i = 0; i + 1 < n; ++i) full[keep[i]] = theta[i];
    return full;
  };

  // a) Flow equalization (disabled: the angle drop across a minor
  // line is pinned by its parallel paths, so re-sizing impedances
  // cannot make a redundant chord visible — see DESIGN.md).
  for (int pass = 0; pass < 0; ++pass) {
    auto theta = solve_dc(branches);
    if (!theta.ok()) break;
    std::vector<double> flow(branches.size());
    std::vector<double> sorted_flow;
    for (size_t k = 0; k < branches.size(); ++k) {
      const Branch& br = branches[k];
      size_t f = static_cast<size_t>(br.from_bus) - 1;
      size_t t = static_cast<size_t>(br.to_bus) - 1;
      flow[k] = std::fabs((*theta)[f] - (*theta)[t]) / br.x;
      sorted_flow.push_back(flow[k]);
    }
    std::nth_element(sorted_flow.begin(),
                     sorted_flow.begin() + sorted_flow.size() / 2,
                     sorted_flow.end());
    double median_flow = std::max(sorted_flow[sorted_flow.size() / 2], 1e-9);
    for (size_t k = 0; k < branches.size(); ++k) {
      double rel = flow[k] / median_flow;
      if (rel >= 1.0) continue;  // only stiffen under-used lines
      double factor = std::max(std::sqrt(rel + 0.04), 0.3);
      branches[k].x = std::max(0.01, branches[k].x * factor);
      branches[k].r = branches[k].x * options.r_over_x;
    }
  }

  // b) Feasibility rescaling.
  {
    auto theta = solve_dc(branches);
    if (theta.ok()) {
      double max_angle = 0.0;
      for (size_t i = 0; i < n; ++i) {
        max_angle = std::max(max_angle, std::fabs((*theta)[i]));
      }
      constexpr double kMaxAngle = 0.55;
      if (max_angle > kMaxAngle) {
        double scale = kMaxAngle / max_angle;
        for (Bus& b : buses) {
          b.pd_mw *= scale;
          b.qd_mvar *= scale;
          b.pg_mw *= scale;
        }
      }
    }
  }

  return Grid::Create(options.name, std::move(buses), std::move(branches));
}

Result<Grid> BuildRingOfMeshesGrid(const RingOfMeshesOptions& options) {
  const size_t regions = options.num_regions;
  const size_t per = options.buses_per_region;
  if (regions < 3) {
    return Status::InvalidArgument("ring-of-meshes needs at least 3 regions");
  }
  if (per < 4) {
    return Status::InvalidArgument(
        "ring-of-meshes needs at least 4 buses per region");
  }
  if (options.ties_per_boundary < 1) {
    return Status::InvalidArgument(
        "ring-of-meshes needs at least one tie per boundary");
  }
  size_t region_lines = std::max(
      per + 1, static_cast<size_t>(std::ceil(
                   options.lines_per_bus * static_cast<double>(per))));
  if (region_lines > per * (per - 1) / 2) {
    return Status::InvalidArgument(
        "regional line budget exceeds bus pairs");
  }
  const size_t n = regions * per;

  // Region centers sit on a circle wide enough that neighbouring unit
  // squares never overlap; each region scatters its buses locally from
  // its own fork stream.
  const double ring_radius =
      std::max(1.5, 0.35 * static_cast<double>(regions));
  std::vector<Point> pos(n);
  std::set<std::pair<size_t, size_t>> edges;  // normalized (i < j)
  for (size_t r = 0; r < regions; ++r) {
    Rng rng = Rng::Fork(options.seed, r);
    const size_t base = r * per;
    const double angle =
        2.0 * M_PI * static_cast<double>(r) / static_cast<double>(regions);
    const double cx = ring_radius * std::cos(angle);
    const double cy = ring_radius * std::sin(angle);
    for (size_t i = 0; i < per; ++i) {
      pos[base + i] = {cx + rng.Uniform(), cy + rng.Uniform()};
    }

    // Regional backbone: geometric MST (Prim) over this region's buses.
    std::vector<bool> in_tree(per, false);
    std::vector<double> best_dist(per, 1e30);
    std::vector<size_t> best_from(per, 0);
    in_tree[0] = true;
    for (size_t i = 1; i < per; ++i) {
      best_dist[i] = Dist(pos[base], pos[base + i]);
    }
    for (size_t step = 1; step < per; ++step) {
      size_t next = per;
      double next_dist = 1e30;
      for (size_t i = 0; i < per; ++i) {
        if (!in_tree[i] && best_dist[i] < next_dist) {
          next = i;
          next_dist = best_dist[i];
        }
      }
      PW_CHECK_LT(next, per);
      in_tree[next] = true;
      edges.insert({base + std::min(next, best_from[next]),
                    base + std::max(next, best_from[next])});
      for (size_t i = 0; i < per; ++i) {
        if (in_tree[i]) continue;
        double d = Dist(pos[base + next], pos[base + i]);
        if (d < best_dist[i]) {
          best_dist[i] = d;
          best_from[i] = next;
        }
      }
    }

    // Regional chords: nearest unused local pairs, leaves lifted to
    // degree >= 2 first (same rationale as BuildSyntheticGrid — a
    // bridge's outage islands the region, wasting evaluation cases).
    std::vector<std::pair<double, std::pair<size_t, size_t>>> candidates;
    candidates.reserve(per * (per - 1) / 2);
    for (size_t i = 0; i < per; ++i) {
      for (size_t j = i + 1; j < per; ++j) {
        if (edges.count({base + i, base + j})) continue;
        candidates.push_back({Dist(pos[base + i], pos[base + j]) *
                                  (1.0 + 0.05 * rng.Uniform()),
                              {base + i, base + j}});
      }
    }
    std::sort(candidates.begin(), candidates.end());
    std::vector<size_t> degree(per, 0);
    for (const auto& [i, j] : edges) {
      if (i >= base && i < base + per) {
        ++degree[i - base];
        ++degree[j - base];
      }
    }
    const size_t region_target =
        edges.size() + (region_lines - (per - 1));
    for (const auto& [d, e] : candidates) {
      if (edges.size() >= region_target) break;
      if (degree[e.first - base] >= 2 && degree[e.second - base] >= 2) {
        continue;
      }
      if (edges.insert(e).second) {
        ++degree[e.first - base];
        ++degree[e.second - base];
      }
    }
    for (const auto& [d, e] : candidates) {
      if (edges.size() >= region_target) break;
      edges.insert(e);
    }
  }

  // Tie lines between neighbouring regions: the geometrically nearest
  // cross-boundary pairs, deterministically (no draws needed). With at
  // least one tie per boundary the ring keeps every region reachable
  // after any single line outage.
  for (size_t r = 0; r < regions; ++r) {
    const size_t base_a = r * per;
    const size_t base_b = ((r + 1) % regions) * per;
    std::vector<std::pair<double, std::pair<size_t, size_t>>> cross;
    cross.reserve(per * per);
    for (size_t i = 0; i < per; ++i) {
      for (size_t j = 0; j < per; ++j) {
        size_t a = base_a + i;
        size_t b = base_b + j;
        cross.push_back({Dist(pos[a], pos[b]),
                         {std::min(a, b), std::max(a, b)}});
      }
    }
    std::sort(cross.begin(), cross.end());
    size_t added = 0;
    for (const auto& [d, e] : cross) {
      if (added >= options.ties_per_boundary) break;
      if (edges.insert(e).second) ++added;
    }
  }
  const size_t m = edges.size();

  // Electrical parameters from a dedicated fork stream; impedances
  // scale with geometric length exactly like BuildSyntheticGrid, so tie
  // lines naturally come out as the long, high-impedance corridors.
  Rng par_rng = Rng::Fork(options.seed, regions);
  double mean_len = 0.0;
  for (const auto& [i, j] : edges) mean_len += Dist(pos[i], pos[j]);
  mean_len /= static_cast<double>(m);

  std::vector<Branch> branches;
  branches.reserve(m);
  for (const auto& [i, j] : edges) {
    double rel = Dist(pos[i], pos[j]) / mean_len;
    Branch br;
    br.from_bus = static_cast<int>(i) + 1;
    br.to_bus = static_cast<int>(j) + 1;
    br.x = std::max(0.01, options.mean_x * rel * par_rng.Uniform(0.5, 1.8));
    br.r = br.x * options.r_over_x * par_rng.Uniform(0.7, 1.3);
    br.b = options.charging_b * rel * par_rng.Uniform(0.5, 1.5);
    branches.push_back(br);
  }

  // Loads and generation, one more fork stream. Slack at bus 1.
  Rng inj_rng = Rng::Fork(options.seed, regions + 1);
  std::vector<Bus> buses(n);
  for (size_t i = 0; i < n; ++i) {
    buses[i].id = static_cast<int>(i) + 1;
    buses[i].type = BusType::kPQ;
    buses[i].vm_setpoint = 1.0;
  }
  double total_load = 0.0;
  size_t num_loaded =
      std::max<size_t>(1, static_cast<size_t>(options.load_fraction *
                                              static_cast<double>(n)));
  for (size_t i : inj_rng.SampleWithoutReplacement(n, num_loaded)) {
    buses[i].pd_mw = inj_rng.Uniform(options.min_load_mw, options.max_load_mw);
    buses[i].qd_mvar = buses[i].pd_mw * inj_rng.Uniform(0.2, 0.45);
    total_load += buses[i].pd_mw;
  }
  size_t num_gens = std::max<size_t>(
      2, static_cast<size_t>(options.gen_fraction * static_cast<double>(n)));
  std::vector<size_t> gen_buses =
      inj_rng.SampleWithoutReplacement(n, num_gens);
  if (std::find(gen_buses.begin(), gen_buses.end(), size_t{0}) ==
      gen_buses.end()) {
    gen_buses[0] = 0;
  }
  double gen_total = total_load * options.gen_margin;
  double gen_each = gen_total / static_cast<double>(gen_buses.size());
  for (size_t idx = 0; idx < gen_buses.size(); ++idx) {
    Bus& b = buses[gen_buses[idx]];
    b.type = gen_buses[idx] == 0 ? BusType::kSlack : BusType::kPV;
    b.pg_mw = gen_each * inj_rng.Uniform(0.7, 1.3);
    b.vm_setpoint = inj_rng.Uniform(1.0, 1.06);
  }

  // Feasibility rescaling via the DC approximation, through the sparse
  // LU: the reduced Laplacian of a 1000-bus ring is far too large for
  // the dense O(n^3) factorization to be worth it here.
  {
    const double base_mva = 100.0;
    std::vector<linalg::Triplet> trips;
    trips.reserve(4 * m + n);
    for (const Branch& br : branches) {
      size_t f = static_cast<size_t>(br.from_bus) - 1;
      size_t t = static_cast<size_t>(br.to_bus) - 1;
      double w = 1.0 / br.x;
      if (f > 0) trips.push_back({f - 1, f - 1, w});
      if (t > 0) trips.push_back({t - 1, t - 1, w});
      if (f > 0 && t > 0) {
        trips.push_back({f - 1, t - 1, -w});
        trips.push_back({t - 1, f - 1, -w});
      }
    }
    linalg::CsrMatrix lap =
        linalg::CsrMatrix::FromTriplets(n - 1, n - 1, std::move(trips));
    auto lu = linalg::SparseLu::Factor(lap);
    if (lu.ok()) {
      linalg::Vector p(n - 1);
      for (size_t i = 1; i < n; ++i) {
        p[i - 1] = (buses[i].pg_mw - buses[i].pd_mw) / base_mva;
      }
      auto theta = lu->Solve(p);
      if (theta.ok()) {
        double max_angle = 0.0;
        for (size_t i = 0; i + 1 < n; ++i) {
          max_angle = std::max(max_angle, std::fabs((*theta)[i]));
        }
        constexpr double kMaxAngle = 0.55;
        if (max_angle > kMaxAngle) {
          double scale = kMaxAngle / max_angle;
          for (Bus& b : buses) {
            b.pd_mw *= scale;
            b.qd_mvar *= scale;
            b.pg_mw *= scale;
          }
        }
      }
    }
  }

  return Grid::Create(options.name, std::move(buses), std::move(branches));
}

Result<Grid> Synthetic300Bus(uint64_t seed) {
  RingOfMeshesOptions options;
  options.name = "synthetic-300";
  options.num_regions = 10;
  options.buses_per_region = 30;
  options.seed = seed;
  return BuildRingOfMeshesGrid(options);
}

Result<Grid> Synthetic1000Bus(uint64_t seed) {
  RingOfMeshesOptions options;
  options.name = "synthetic-1000";
  options.num_regions = 20;
  options.buses_per_region = 50;
  options.seed = seed;
  return BuildRingOfMeshesGrid(options);
}

}  // namespace phasorwatch::grid
