#ifndef PHASORWATCH_DETECT_PROXIMITY_H_
#define PHASORWATCH_DETECT_PROXIMITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "detect/subspace_model.h"
#include "linalg/matrix.h"
#include "sim/missing_data.h"

namespace phasorwatch::detect {

/// Evaluates sample-to-subspace proximities through a detection group,
/// tolerating missing measurements (Eq. 9).
///
/// For a model with constraint basis B (ambient N, dim k) and mean mu,
/// a complete sample x has proximity ||B^T (x - mu)||^2. When only the
/// detection-group coordinates D are trusted, split C = B^T by columns
/// into C_D and C_M (M = complement). The best consistent completion of
/// the hidden part minimizes ||C_D z_D + C_M z_M||, giving the residual
///   prox = || (I - C_M C_M^+) C_D z_D ||^2,
/// i.e. a regressor built from a pseudo-inverse of a row-partition of
/// the subspace matrix, as in Eq. 9 / [12]. The projector is cached per
/// (model, D) pair: detection groups repeat heavily across samples.
class ProximityEngine {
 public:
  ProximityEngine() = default;

  /// Proximity of the sample to `model` using only coordinates in
  /// `group` (must be non-empty and contain no missing nodes).
  /// `model_key` identifies the model for caching (stable unique id).
  Result<double> Evaluate(const SubspaceModel& model, uint64_t model_key,
                          const linalg::Vector& sample,
                          const std::vector<size_t>& group);

  /// Complete-sample proximity (no group restriction, no cache).
  static double EvaluateComplete(const SubspaceModel& model,
                                 const linalg::Vector& sample);

  size_t cache_size() const { return cache_.size(); }
  void ClearCache() { cache_.clear(); }

 private:
  struct CachedRegressor {
    // R = (I - C_M C_M^+) C_D, shaped k x |D|.
    linalg::Matrix r;
    std::vector<size_t> group;
  };

  std::unordered_map<uint64_t, CachedRegressor> cache_;
};

/// Stable hash key combining a model id and a detection-group member
/// set (order-insensitive within sorted groups).
uint64_t GroupCacheKey(uint64_t model_key, const std::vector<size_t>& group);

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_PROXIMITY_H_
