#ifndef PHASORWATCH_DETECT_PROXIMITY_H_
#define PHASORWATCH_DETECT_PROXIMITY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/sync.h"
#include "detect/subspace_model.h"
#include "linalg/matrix.h"
#include "sim/missing_data.h"

namespace phasorwatch::detect {

/// Evaluates sample-to-subspace proximities through a detection group,
/// tolerating missing measurements (Eq. 9).
///
/// For a model with constraint basis B (ambient N, dim k) and mean mu,
/// a complete sample x has proximity ||B^T (x - mu)||^2. When only the
/// detection-group coordinates D are trusted, split C = B^T by columns
/// into C_D and C_M (M = complement). The best consistent completion of
/// the hidden part minimizes ||C_D z_D + C_M z_M||, giving the residual
///   prox = || (I - C_M C_M^+) C_D z_D ||^2,
/// i.e. a regressor built from a pseudo-inverse of a row-partition of
/// the subspace matrix, as in Eq. 9 / [12]. The projector is cached per
/// (model, D) pair: detection groups repeat heavily across samples.
///
/// Thread safety: Evaluate() may be called concurrently from any number
/// of threads (the cache is guarded by a shared mutex; entries are
/// immutable once built, and two threads racing to build the same key
/// compute bit-identical regressors). ClearCache() must not run
/// concurrently with Evaluate().
class ProximityEngine {
  struct CachedRegressor;  // defined in the private section below

 public:
  ProximityEngine() = default;

  /// Batch-local regressor memo. A DetectBatch pass evaluates the same
  /// (model, group) pairs for every sample in the batch; holding the
  /// resolved regressors here skips the shared-mutex lookup after the
  /// first sample. Counters still tick exactly as on the shared-cache
  /// path, so observability output is unchanged. Single-threaded: one
  /// BatchCache per calling thread, never shared.
  class BatchCache {
   public:
    void Clear() { memo_.clear(); }

   private:
    friend class ProximityEngine;
    std::unordered_map<uint64_t, std::shared_ptr<const CachedRegressor>> memo_;
  };

  /// Movable so the owning detector stays movable; the mutex itself is
  /// not moved (each engine keeps its own). Moving while other threads
  /// use either engine is a bug, as with any container — which is why
  /// the lock is deliberately not taken here and the thread-safety
  /// analysis is waived.
  // Move is documented single-threaded; locking would promise a safety
  // this operation cannot provide.
  ProximityEngine(ProximityEngine&& other) noexcept
      PW_NO_THREAD_SAFETY_ANALYSIS : cache_(std::move(other.cache_)) {}
  // Move is documented single-threaded (see move constructor).
  ProximityEngine& operator=(ProximityEngine&& other) noexcept
      PW_NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) cache_ = std::move(other.cache_);
    return *this;
  }

  /// Proximity of the sample to `model` using only coordinates in
  /// `group` (must be non-empty and contain no missing nodes).
  /// `model_key` identifies the model for caching (stable unique id).
  /// `batch_cache`, when non-null, memoizes resolved regressors across
  /// the caller's batch (see BatchCache). Allocation-free once the
  /// (model, group) regressor is cached; the cold build path lives in
  /// BuildRegressor.
  PW_NO_ALLOC PW_NODISCARD Result<double> Evaluate(
      const SubspaceModel& model, uint64_t model_key,
      const linalg::Vector& sample, const std::vector<size_t>& group,
      BatchCache* batch_cache = nullptr);

  /// Complete-sample proximity (no group restriction, no cache).
  static double EvaluateComplete(const SubspaceModel& model,
                                 const linalg::Vector& sample);

  size_t cache_size() const {
    ReaderLock lock(mu_);
    return cache_.size();
  }
  void ClearCache() {
    WriterLock lock(mu_);
    cache_.clear();
  }

 private:
  struct CachedRegressor {
    // R = (I - C_M C_M^+) C_D, shaped k x |D|.
    linalg::Matrix r;
    std::vector<size_t> group;
  };

  /// Cold path of Evaluate: builds the Eq. 9 missing-data regressor for
  /// a (model, group) pair. Runs once per pair; every later Evaluate
  /// applies the cached result allocation-free.
  PW_NODISCARD static Result<std::shared_ptr<const CachedRegressor>>
  BuildRegressor(const SubspaceModel& model, const std::vector<size_t>& group);

  mutable SharedMutex mu_{lock_rank::kProximityCache};
  /// Values are shared_ptr so an Evaluate() can keep applying a
  /// regressor lock-free while other threads insert new entries.
  std::unordered_map<uint64_t, std::shared_ptr<const CachedRegressor>> cache_
      PW_GUARDED_BY(mu_);
};

/// Stable hash key combining a model id and a detection-group member
/// set (order-insensitive within sorted groups).
uint64_t GroupCacheKey(uint64_t model_key, const std::vector<size_t>& group);

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_PROXIMITY_H_
