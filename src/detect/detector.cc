#include "detect/detector.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace phasorwatch::detect {
namespace {

using linalg::Matrix;
using linalg::Vector;

// Stable model keys for the proximity cache. Node keys occupy the even
// and odd slots after the normal model; line-case keys start past the
// node range (grids here are far below 2^20 nodes).
constexpr uint64_t kNormalModelKey = 0;
uint64_t UnionKey(size_t node) { return 1 + 2 * node; }
uint64_t IntersectionKey(size_t node) { return 2 + 2 * node; }
// All whitened classification models share one coefficient matrix, so
// they share a single cache family key.
constexpr uint64_t kClassFamilyKey = uint64_t{1} << 21;

// Floor keeping the Eq. 11 ratio finite when the normal residual is
// numerically zero.
constexpr double kProxFloor = 1e-15;

// Peeling threshold sentinel for cases with no calibrated null
// distribution (single-case training): no residual drop ever clears it,
// so such a case can only be the anchor line, never a peeled addition.
constexpr double kPeelTauNever = 1e300;

}  // namespace

Result<OutageDetector> OutageDetector::Train(const grid::Grid& grid,
                                             const sim::PmuNetwork& network,
                                             const TrainingData& data,
                                             const DetectorOptions& options) {
  PW_TRACE_SCOPE("detect.train_us");
  const size_t n = grid.num_buses();
  if (data.normal == nullptr || data.normal->num_nodes() != n) {
    return Status::InvalidArgument("normal training data missing or wrong size");
  }
  if (data.case_lines.size() != data.outage.size() || data.outage.empty()) {
    return Status::InvalidArgument("outage training cases malformed");
  }
  if (network.num_nodes() != n) {
    return Status::InvalidArgument("PMU network size mismatch");
  }

  OutageDetector det;
  det.grid_ = &grid;
  det.network_ = &network;
  det.options_ = options;
  det.case_lines_ = data.case_lines;

  ThreadPool pool(ResolveParallelism(options.parallelism));

  // 1. Subspace model per condition. The normal model keeps its full
  // basis: the whitened classification models are built from it.
  // Per-line models are independent SVD/eigensolve problems, so the
  // loop fans out across the pool; results land in their own slots and
  // are bit-identical at any parallelism degree.
  SubspaceModelOptions normal_opts = options.subspace;
  normal_opts.keep_full_basis = true;
  PW_ASSIGN_OR_RETURN(det.normal_model_,
                      LearnSubspaceModel(*data.normal, normal_opts));
  det.line_models_.resize(data.outage.size());
  PW_RETURN_IF_ERROR(pool.ParallelFor(
      data.outage.size(), [&](size_t c) -> Status {
        const sim::PhasorDataSet* block = data.outage[c];
        if (block == nullptr || block->num_nodes() != n) {
          return Status::InvalidArgument(
              "outage training block missing/wrong size");
        }
        PW_ASSIGN_OR_RETURN(det.line_models_[c],
                            LearnSubspaceModel(*block, options.subspace));
        return Status::OK();
      }));
  const size_t normal_samples = data.normal->num_samples();
  det.normal_class_model_ = MakeWhitenedClassModel(
      det.normal_model_, det.normal_model_.mean, normal_samples);
  det.line_class_models_.reserve(det.line_models_.size());
  for (const SubspaceModel& m : det.line_models_) {
    det.line_class_models_.push_back(
        MakeWhitenedClassModel(det.normal_model_, m.mean, normal_samples));
  }

  // 2. Node-based union/intersection subspaces (Eq. 3). Nodes with no
  // valid outage case fall back to the normal model's constraints so
  // their scores stay defined (they simply never rank first). One
  // independent eigensolve per node — the second training hotspot —
  // fanned out across the pool.
  det.node_models_.resize(n);
  const bool lowrank_nodes = options.sparse_bus_threshold > 0 &&
                             n >= options.sparse_bus_threshold;
  PW_RETURN_IF_ERROR(pool.ParallelFor(n, [&](size_t i) -> Status {
    std::vector<const SubspaceModel*> incident;
    for (size_t c = 0; c < det.case_lines_.size(); ++c) {
      if (det.case_lines_[c].i == i || det.case_lines_[c].j == i) {
        incident.push_back(&det.line_models_[c]);
      }
    }
    if (incident.empty()) {
      det.node_models_[i].union_model = det.normal_model_;
      det.node_models_[i].intersection_model = det.normal_model_;
    } else {
      det.node_models_[i] = BuildNodeSubspaces(
          incident, options.soft_intersection_tol, lowrank_nodes);
    }
    return Status::OK();
  }));

  // 3. Normal-operation ellipses (Eq. 4).
  det.ellipses_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<PhasorPoint> points;
    points.reserve(data.normal->num_samples());
    for (size_t t = 0; t < data.normal->num_samples(); ++t) {
      points.push_back({data.normal->vm(i, t), data.normal->va(i, t)});
    }
    PW_ASSIGN_OR_RETURN(EllipseModel ellipse,
                        EllipseModel::Fit(points, options.ellipse_margin));
    det.ellipses_.push_back(ellipse);
  }

  // 4. Detection capabilities (Eqs. 5-7).
  PW_ASSIGN_OR_RETURN(
      det.capabilities_,
      CapabilityTable::Build(grid, det.ellipses_, *data.normal,
                             det.case_lines_, data.outage));

  // 5. Per-cluster detection groups (Eq. 8 + naive PCA seed).
  DetectionGroupBuilder builder(network, det.capabilities_, options.groups);
  det.groups_.reserve(network.num_clusters());
  for (size_t c = 0; c < network.num_clusters(); ++c) {
    // Loading matrix: stack the constraint bases of the cluster nodes'
    // union subspaces; rows are node loadings for the naive pick.
    Matrix loadings;
    for (size_t node : network.Cluster(c)) {
      loadings =
          loadings.ConcatCols(det.node_models_[node].union_model
                                  .constraints.basis());
    }
    det.groups_.push_back(builder.Build(c, loadings));
  }

  // 6. Calibrate the per-cluster outage gates: the largest
  // normal-subspace residual observed on normal training samples, for
  // each detection-group variant, inflated by the gate margin. A test
  // sample whose residual exceeds a gate is declared an outage.
  const size_t num_clusters = network.num_clusters();
  det.gates_.assign(num_clusters, {});
  size_t normal_take =
      std::min(options.calibration_samples, data.normal->num_samples());
  if (normal_take == 0) {
    return Status::InvalidArgument("no calibration samples available");
  }
  det.node_baseline_in_ = Vector(n, 1.0);
  det.node_baseline_out_ = Vector(n, 1.0);
  for (int variant = 0; variant < 2; ++variant) {
    // variant 0: in-cluster groups (complete data); variant 1:
    // out-of-cluster groups (cluster data missing).
    std::vector<SelectedGroup> groups(num_clusters);
    for (size_t c = 0; c < num_clusters; ++c) {
      sim::MissingMask mask = sim::MissingMask::None(n);
      if (variant == 1) {
        // Force the out-of-cluster variant by marking one member of the
        // cluster missing (its own group members remain available).
        mask.missing[network.Cluster(c).front()] = true;
        groups[c] = det.SelectGroup(c, mask);
        groups[c].used_out_of_cluster = true;
      } else {
        groups[c] = det.SelectGroup(c, mask);
      }
    }
    std::vector<double> worst(num_clusters, kProxFloor);
    std::vector<std::vector<double>> raw_scores(n);
    for (size_t t = 0; t < normal_take; ++t) {
      auto [vm, va] = data.normal->Sample(t);
      Vector features = FeatureVector(vm, va, options.subspace.channel);
      PW_ASSIGN_OR_RETURN(Vector residuals,
                          det.ClusterNormalResiduals(features, groups));
      for (size_t c = 0; c < num_clusters; ++c) {
        worst[c] = std::max(worst[c], residuals[c]);
      }
      PW_ASSIGN_OR_RETURN(Vector scores,
                          det.RawNodeScores(features, groups));
      for (size_t i = 0; i < n; ++i) raw_scores[i].push_back(scores[i]);
    }
    for (size_t c = 0; c < num_clusters; ++c) {
      double gate = worst[c] * options.gate_margin;
      if (variant == 0) {
        det.gates_[c].in_cluster = gate;
      } else {
        det.gates_[c].out_of_cluster = gate;
      }
    }
    // Per-node baselines: median raw score on normal data.
    Vector& baseline =
        variant == 0 ? det.node_baseline_in_ : det.node_baseline_out_;
    for (size_t i = 0; i < n; ++i) {
      std::vector<double>& samples = raw_scores[i];
      std::nth_element(samples.begin(),
                       samples.begin() + samples.size() / 2, samples.end());
      baseline[i] = std::max(samples[samples.size() / 2], kProxFloor);
    }
  }

  // Calibrate the ratio gate: on normal data the best line-model
  // residual should stay well above ratio_gate * normal residual; pull
  // the gate down if any normal calibration sample gets close.
  det.ratio_gate_ = options.ratio_gate;
  {
    // Evaluate normal calibration samples both complete and under a
    // rotating random mask: missing entries shift the ratio statistic
    // slightly and the gate must stay quiet for both.
    // pw-lint: allow(rng-discipline) fixed-seed self-check stream.
    Rng mask_rng(0x9A7E5EEDull);
    double lowest_normal_ratio = 1e300;
    auto ratio_for = [&](const Vector& features,
                         const std::vector<size_t>& avail) -> Result<double> {
      PW_ASSIGN_OR_RETURN(double r0,
                          det.engine_.Evaluate(det.normal_class_model_,
                                               kClassFamilyKey, features,
                                               det.GroupCoordinates(avail)));
      double best = -1.0;
      for (size_t c = 0; c < det.case_lines_.size(); ++c) {
        PW_ASSIGN_OR_RETURN(
            double prox,
            det.engine_.Evaluate(det.line_class_models_[c], kClassFamilyKey,
                                 features, det.GroupCoordinates(avail)));
        if (best < 0.0 || prox < best) best = prox;
      }
      return best / std::max(r0, kProxFloor);
    };
    std::vector<size_t> all_nodes(n);
    std::iota(all_nodes.begin(), all_nodes.end(), size_t{0});
    for (size_t t = 0; t < normal_take; ++t) {
      auto [vm, va] = data.normal->Sample(t);
      Vector features = FeatureVector(vm, va, options.subspace.channel);
      PW_ASSIGN_OR_RETURN(double complete_ratio,
                          ratio_for(features, all_nodes));
      lowest_normal_ratio = std::min(lowest_normal_ratio, complete_ratio);
      sim::MissingMask mask =
          sim::MissingRandom(n, 1 + mask_rng.UniformInt(4), {}, mask_rng);
      PW_ASSIGN_OR_RETURN(double masked_ratio,
                          ratio_for(features, mask.AvailableIndices()));
      lowest_normal_ratio = std::min(lowest_normal_ratio, masked_ratio);
    }
    det.ratio_gate_ =
        std::min(det.ratio_gate_, 0.9 * lowest_normal_ratio);
    if (lowest_normal_ratio < options.ratio_gate) {
      PW_LOG(Warning) << "ratio gate pulled down to " << det.ratio_gate_
                      << " on " << grid.name()
                      << " (normal data approaches a line model)";
    }
  }

  // Calibrate the peeling acceptance thresholds (multi-line
  // identification only). For each single-outage training sample of
  // case t, peel the TRUE line's mean shift and record the normalized
  // residual drop
  //   delta_c = (r_peeled_normal - r_peeled_class_c) / ||R d_c||^2
  // every other case c would have scored — the null distribution of a
  // spurious second line riding on a real first one. The thresholds
  // are conditioned on the anchor: tau(c | t) is the configured
  // quantile of the (c, t) cell plus the margin, because the leftover
  // nonlinearity of a real outage t is systematic — some neighbors c
  // always pick up part of it — and a threshold pooled across anchors
  // would let exactly those phantoms through. The calibration sweeps
  // the FULL training corpus (not calibration_samples): each (c, t)
  // cell needs dense sampling for its own quantile. Skipped entirely
  // at the default max_outage_lines = 1 so legacy training stays
  // bit-identical.
  if (options.max_outage_lines >= 2) {
    if (options.peel_null_quantile <= 0.0 ||
        options.peel_null_quantile > 1.0) {
      return Status::InvalidArgument("peel_null_quantile must be in (0, 1]");
    }
    std::vector<size_t> all_nodes(n);
    std::iota(all_nodes.begin(), all_nodes.end(), size_t{0});
    const std::vector<size_t> all_coords = det.GroupCoordinates(all_nodes);
    const size_t dim = det.normal_class_model_.mean.size();
    const size_t num_cases = data.outage.size();

    // Whitened shift energies ||R d_c||^2: the normal class model
    // evaluated at mu_c measures exactly ||R (mu_c - mu_n)||^2. Not
    // stored — Detect recomputes the energy over ITS pooled
    // coordinates, so that under missing data the drop and its
    // normalizer always cover the same coordinate set and the delta
    // statistic keeps the calibrated scale.
    std::vector<double> shift_energy(num_cases, kProxFloor);
    for (size_t c = 0; c < num_cases; ++c) {
      PW_ASSIGN_OR_RETURN(
          double energy,
          det.engine_.Evaluate(det.normal_class_model_, kClassFamilyKey,
                               det.line_class_models_[c].mean, all_coords));
      shift_energy[c] = std::max(energy, kProxFloor);
    }

    std::vector<std::vector<double>> nulls(num_cases * num_cases);
    // pw-lint: allow(rng-discipline) fixed-seed self-check stream.
    Rng peel_mask_rng(0x9EE15EEDull);
    // Records the spurious deltas of every non-true case on a peeled
    // sample over one coordinate set. The shift energy is re-evaluated
    // per coordinate set so masked variants keep the statistic's scale
    // (Detect does the same over its pooled coordinates).
    auto record_nulls = [&](const Vector& peeled, size_t t,
                            const std::vector<size_t>& coords) -> Status {
      PW_ASSIGN_OR_RETURN(
          double r_base,
          det.engine_.Evaluate(det.normal_class_model_, kClassFamilyKey,
                               peeled, coords));
      for (size_t c = 0; c < num_cases; ++c) {
        if (c == t) continue;
        PW_ASSIGN_OR_RETURN(
            double r,
            det.engine_.Evaluate(det.line_class_models_[c], kClassFamilyKey,
                                 peeled, coords));
        PW_ASSIGN_OR_RETURN(
            double energy,
            det.engine_.Evaluate(det.normal_class_model_, kClassFamilyKey,
                                 det.line_class_models_[c].mean, coords));
        nulls[c * num_cases + t].push_back(
            (r_base - r) / std::max(energy, kProxFloor));
      }
      return Status::OK();
    };
    for (size_t t = 0; t < num_cases; ++t) {
      const sim::PhasorDataSet* block = data.outage[t];
      for (size_t s = 0; s < block->num_samples(); ++s) {
        auto [vm, va] = block->Sample(s);
        Vector peeled = FeatureVector(vm, va, options.subspace.channel);
        for (size_t i = 0; i < dim; ++i) {
          peeled[i] -= det.line_class_models_[t].mean[i] -
                       det.normal_class_model_.mean[i];
        }
        PW_RETURN_IF_ERROR(record_nulls(peeled, t, all_coords));
        // A masked variant per sample, mirroring the ratio-gate
        // calibration: the bad-data screen and transport loss both
        // shrink the coordinate set at detect time, and the whitened
        // geometry over fewer coordinates spreads the spurious deltas
        // beyond their complete-coordinate envelope.
        sim::MissingMask mask = sim::MissingRandom(
            n, 1 + peel_mask_rng.UniformInt(4), {}, peel_mask_rng);
        PW_RETURN_IF_ERROR(record_nulls(
            peeled, t, det.GroupCoordinates(mask.AvailableIndices())));
      }
    }
    det.peel_tau_.assign(num_cases * num_cases, kPeelTauNever);
    for (size_t cell = 0; cell < nulls.size(); ++cell) {
      if (nulls[cell].empty()) continue;  // diagonal / unsampled case
      std::sort(nulls[cell].begin(), nulls[cell].end());
      const size_t idx = std::min(
          nulls[cell].size() - 1,
          static_cast<size_t>(options.peel_null_quantile *
                              static_cast<double>(nulls[cell].size())));
      det.peel_tau_[cell] = nulls[cell][idx] + options.peel_margin;
    }
  }

  // Diagnostic: check separation on a few outage calibration samples.
  {
    std::vector<SelectedGroup> groups =
        det.SelectGroups(sim::MissingMask::None(n));
    size_t per_case = std::max<size_t>(
        1, options.calibration_samples / data.outage.size());
    size_t gated = 0, total = 0;
    for (const sim::PhasorDataSet* block : data.outage) {
      size_t take = std::min(per_case, block->num_samples());
      for (size_t t = 0; t < take; ++t) {
        auto [vm, va] = block->Sample(t);
        Vector features = FeatureVector(vm, va, options.subspace.channel);
        PW_ASSIGN_OR_RETURN(Vector residuals,
                            det.ClusterNormalResiduals(features, groups));
        ++total;
        for (size_t c = 0; c < num_clusters; ++c) {
          if (residuals[c] > det.gates_[c].in_cluster) {
            ++gated;
            break;
          }
        }
      }
    }
    if (total > 0 && gated < total / 2) {
      PW_LOG(Warning) << "weak gate separation on " << grid.name() << ": only "
                      << gated << "/" << total
                      << " outage calibration samples exceed the gate";
    }
  }
  return det;
}

double OutageDetector::decision_threshold() const {
  if (gates_.empty()) return 0.0;
  double sum = 0.0;
  for (const GateThresholds& g : gates_) sum += g.in_cluster;
  return sum / static_cast<double>(gates_.size());
}

PW_NO_ALLOC void OutageDetector::SelectGroupInto(size_t cluster,
                                     const sim::MissingMask& mask,
                                     SelectedGroup* selected,
                                     GroupSelectionStats* stats) const {
  const ClusterDetectionGroup& group = groups_[cluster];
  // Eq. 10: cluster data incomplete -> use the out-of-cluster members.
  selected->members.clear();
  selected->used_out_of_cluster = false;
  for (size_t node : network_->Cluster(cluster)) {
    if (mask.missing[node]) {
      selected->used_out_of_cluster = true;
      break;
    }
  }
  if (selected->used_out_of_cluster) {
    PW_OBS_COUNTER_INC("detect.groups.out_of_cluster_selected");
    ++stats->out_of_cluster_selected;
  }
  const std::vector<size_t>& preferred =
      selected->used_out_of_cluster ? group.out_of_cluster : group.in_cluster;
  for (size_t node : preferred) {
    if (!mask.missing[node]) selected->members.push_back(node);
  }
  if (selected->members.empty()) {
    // Both alternatives compromised: fall back to the other side, then
    // to any available nodes at all.
    PW_OBS_COUNTER_INC("detect.groups.fallback_alternate_side");
    ++stats->fallback_alternate_side;
    const std::vector<size_t>& alt =
        selected->used_out_of_cluster ? group.in_cluster
                                      : group.out_of_cluster;
    for (size_t node : alt) {
      if (!mask.missing[node]) selected->members.push_back(node);
    }
  }
  if (selected->members.empty()) {
    PW_OBS_COUNTER_INC("detect.groups.fallback_any_available");
    ++stats->fallback_any_available;
    for (size_t i = 0;
         i < mask.size() &&
         selected->members.size() < options_.groups.max_group_size;
         ++i) {
      if (!mask.missing[i]) selected->members.push_back(i);
    }
  }
  GroupCoordinatesInto(selected->members, &selected->coords);
}

OutageDetector::SelectedGroup OutageDetector::SelectGroup(
    size_t cluster, const sim::MissingMask& mask) const {
  SelectedGroup selected;
  GroupSelectionStats stats;
  SelectGroupInto(cluster, mask, &selected, &stats);
  return selected;
}

PW_NO_ALLOC void OutageDetector::GroupCoordinatesInto(const std::vector<size_t>& nodes,
                                          std::vector<size_t>* coords) const {
  coords->clear();
  if (options_.subspace.channel != PhasorChannel::kBoth) {
    coords->insert(coords->end(), nodes.begin(), nodes.end());
    return;
  }
  const size_t n = grid_->num_buses();
  // Keep sorted order: magnitudes occupy [0, n), angles [n, 2n).
  for (size_t node : nodes) coords->push_back(node);
  for (size_t node : nodes) coords->push_back(n + node);
}

std::vector<size_t> OutageDetector::GroupCoordinates(
    const std::vector<size_t>& nodes) const {
  std::vector<size_t> coords;
  GroupCoordinatesInto(nodes, &coords);
  return coords;
}

PW_NO_ALLOC void OutageDetector::SelectGroupsInto(const sim::MissingMask& mask,
                                      std::vector<SelectedGroup>* groups,
                                      GroupSelectionStats* stats) const {
  *stats = GroupSelectionStats{};
  groups->resize(network_->num_clusters());
  for (size_t c = 0; c < groups->size(); ++c) {
    SelectGroupInto(c, mask, &(*groups)[c], stats);
  }
}

std::vector<OutageDetector::SelectedGroup> OutageDetector::SelectGroups(
    const sim::MissingMask& mask) const {
  std::vector<SelectedGroup> groups;
  GroupSelectionStats stats;
  SelectGroupsInto(mask, &groups, &stats);
  return groups;
}

PW_NO_ALLOC Status OutageDetector::ClusterNormalResidualsInto(
    const Vector& features, const std::vector<SelectedGroup>& groups,
    ProximityEngine::BatchCache* batch_cache, Vector* residuals) {
  residuals->Assign(groups.size());
  for (size_t c = 0; c < groups.size(); ++c) {
    if (groups[c].members.empty()) {
      return Status::DataMissing("no available nodes for cluster " +
                                 std::to_string(c));
    }
    PW_ASSIGN_OR_RETURN((*residuals)[c],
                        engine_.Evaluate(normal_model_, kNormalModelKey,
                                         features, groups[c].coords,
                                         batch_cache));
  }
  return Status::OK();
}

Result<Vector> OutageDetector::ClusterNormalResiduals(
    const Vector& features, const std::vector<SelectedGroup>& groups) {
  Vector residuals;
  PW_RETURN_IF_ERROR(
      ClusterNormalResidualsInto(features, groups, nullptr, &residuals));
  return residuals;
}

PW_NO_ALLOC Status OutageDetector::RawNodeScoresInto(
    const Vector& features, const std::vector<SelectedGroup>& groups,
    ProximityEngine::BatchCache* batch_cache, Vector* scores) {
  const size_t n = grid_->num_buses();
  scores->Assign(n);
  for (size_t i = 0; i < n; ++i) {
    const SelectedGroup& group = groups[network_->ClusterOf(i)];
    if (group.members.empty()) {
      return Status::DataMissing("no available nodes for node " +
                                 std::to_string(i));
    }
    PW_ASSIGN_OR_RETURN(
        double prox_union,
        engine_.Evaluate(node_models_[i].union_model, UnionKey(i), features,
                         group.coords, batch_cache));
    if (!options_.use_scaling) {
      (*scores)[i] = prox_union;
      continue;
    }
    PW_ASSIGN_OR_RETURN(
        double prox_intersection,
        engine_.Evaluate(node_models_[i].intersection_model,
                         IntersectionKey(i), features, group.coords,
                         batch_cache));
    PW_ASSIGN_OR_RETURN(
        double prox_normal,
        engine_.Evaluate(normal_model_, kNormalModelKey, features,
                         group.coords, batch_cache));
    // Eq. 11: scale the union proximity by intersection/normal.
    (*scores)[i] = prox_union * prox_intersection /
                   std::max(prox_normal, kProxFloor);
  }
  return Status::OK();
}

Result<Vector> OutageDetector::RawNodeScores(
    const Vector& features, const std::vector<SelectedGroup>& groups) {
  Vector scores;
  PW_RETURN_IF_ERROR(RawNodeScoresInto(features, groups, nullptr, &scores));
  return scores;
}

PW_NO_ALLOC Status OutageDetector::NodeScoresInto(const Vector& features,
                                      const std::vector<SelectedGroup>& groups,
                                      ProximityEngine::BatchCache* batch_cache,
                                      Vector* scores) {
  PW_RETURN_IF_ERROR(RawNodeScoresInto(features, groups, batch_cache, scores));
  for (size_t i = 0; i < scores->size(); ++i) {
    const SelectedGroup& group = groups[network_->ClusterOf(i)];
    const Vector& baseline =
        group.used_out_of_cluster ? node_baseline_out_ : node_baseline_in_;
    (*scores)[i] /= baseline[i];
  }
  return Status::OK();
}

/// Per-thread buffers behind Detect/DetectBatch. Every member keeps its
/// capacity across calls, so a warmed steady-state detection loop
/// allocates only the vectors that escape in the DetectionResult.
struct OutageDetector::DetectScratch {
  linalg::Vector features;
  std::vector<SelectedGroup> groups;
  GroupSelectionStats group_stats;
  /// Mask the cached `groups` selection was built for (the *effective*
  /// mask, after bad-data screening). Only honored within one
  /// DetectBatch call (`selection_valid` is reset at batch entry), so a
  /// stale selection can never leak across detectors.
  std::vector<bool> cached_mask;
  bool selection_valid = false;
  /// Input mask plus the nodes demoted by the bad-data screen. Only
  /// populated (and only read) on samples where the screen fired.
  sim::MissingMask screened_mask;
  linalg::Vector residuals;
  std::vector<size_t> pooled;
  std::vector<size_t> pooled_coords;
  std::vector<size_t> order;
  std::vector<bool> selected;
  std::vector<std::pair<double, size_t>> candidates;  // (residual, case)
  /// Multi-line peeling state (max_outage_lines >= 2 only): the sample
  /// with the accepted lines' mean shifts subtracted, and which cases
  /// have been taken.
  linalg::Vector peel_features;
  std::vector<bool> peel_taken;
};

PW_NO_ALLOC Result<const sim::MissingMask*> OutageDetector::ScreenBadData(
    const Vector& vm, const Vector& va, const sim::MissingMask& mask,
    DetectScratch& scratch, DetectionResult* result) {
  const size_t n = mask.size();
  bool copied = false;
  for (size_t i = 0; i < n; ++i) {
    if (mask.missing[i]) continue;
    const bool finite = std::isfinite(vm[i]) && std::isfinite(va[i]);
    if (!options_.screen_bad_data) {
      if (finite) continue;
      // Screening off is an ablation/debug posture, not a license to
      // propagate garbage: NaN/Inf never flows into the subspace math.
      return Status::InvalidArgument(
          "non-finite measurement at available node " + std::to_string(i) +
          " (bad-data screening disabled)");
    }
    bool bad = !finite;
    if (!bad && ellipses_[i].QuadraticForm({vm[i], va[i]}) >
                    options_.screen_threshold) {
      bad = true;
    }
    if (!bad) continue;
    if (!copied) {
      scratch.screened_mask.missing.assign(mask.missing.begin(),
                                           mask.missing.end());
      copied = true;
    }
    scratch.screened_mask.missing[i] = true;
    ++result->screened_nodes;
    PW_OBS_COUNTER_INC("faults.screened");
  }
  if (!copied) return &mask;
  return &scratch.screened_mask;
}

PW_NO_ALLOC Result<DetectionResult> OutageDetector::Detect(const Vector& vm,
                                               const Vector& va,
                                               const sim::MissingMask& mask) {
  static thread_local DetectScratch scratch;
  scratch.selection_valid = false;
  Result<DetectionResult> result =
      DetectImpl(vm, va, mask, /*batch_cache=*/nullptr, scratch);
  if (!result.ok()) {
    PW_OBS_COUNTER_INC("detect.samples_rejected");
  }
  return result;
}

OutageDetector::BatchMemo::BatchMemo()
    : scratch_(std::make_unique<DetectScratch>()) {}
OutageDetector::BatchMemo::~BatchMemo() = default;
OutageDetector::BatchMemo::BatchMemo(BatchMemo&& other) noexcept = default;
OutageDetector::BatchMemo& OutageDetector::BatchMemo::operator=(
    BatchMemo&& other) noexcept = default;

void OutageDetector::BatchMemo::Clear() {
  cache_.Clear();
  scratch_->selection_valid = false;
}

PW_NO_ALLOC Result<std::vector<DetectionResult>> OutageDetector::DetectBatch(
    const std::vector<BatchSample>& samples) {
  static thread_local DetectScratch scratch;
  static thread_local ProximityEngine::BatchCache batch_cache;
  // Model cache keys are only unique within one detector, so the
  // thread-local memo must not survive into a batch on a different
  // instance. (A caller-owned BatchMemo pins one detector instead; see
  // the overload below.)
  batch_cache.Clear();
  scratch.selection_valid = false;
  return DetectBatchImpl(samples, &batch_cache, scratch);
}

PW_NO_ALLOC Result<std::vector<DetectionResult>> OutageDetector::DetectBatch(
    const std::vector<BatchSample>& samples, BatchMemo* memo) {
  if (memo == nullptr) return DetectBatch(samples);
  // The memo's selection/cache persist from previous calls on this
  // detector — that is the point. BatchMemo::Clear() is the owner's
  // obligation when the detector behind the memo changes.
  return DetectBatchImpl(samples, &memo->cache_, *memo->scratch_);
}

PW_NO_ALLOC Result<std::vector<DetectionResult>>
OutageDetector::DetectBatchImpl(const std::vector<BatchSample>& samples,
                                ProximityEngine::BatchCache* batch_cache,
                                DetectScratch& scratch) {
  PW_OBS_HISTOGRAM_OBSERVE("detect.batch_size", samples.size(),
                           ::phasorwatch::obs::DefaultIterationBuckets());
  // pw-lint: allow(no-alloc) the result set escapes to the caller.
  std::vector<DetectionResult> results;
  results.reserve(samples.size());
  for (const BatchSample& sample : samples) {
    if (sample.vm == nullptr || sample.va == nullptr ||
        sample.mask == nullptr) {
      return Status::InvalidArgument("DetectBatch sample has null fields");
    }
    Result<DetectionResult> result =
        DetectImpl(*sample.vm, *sample.va, *sample.mask, batch_cache, scratch);
    if (!result.ok()) {
      PW_OBS_COUNTER_INC("detect.samples_rejected");
      return result.status();
    }
    results.push_back(std::move(result).value());
  }
  return results;
}

PW_NO_ALLOC Result<DetectionResult> OutageDetector::DetectImpl(
    const Vector& vm, const Vector& va, const sim::MissingMask& mask,
    ProximityEngine::BatchCache* batch_cache, DetectScratch& scratch) {
  PW_TRACE_SCOPE("detect.total_us");
  PW_OBS_COUNTER_INC("detect.calls");
  const size_t n = grid_->num_buses();
  if (vm.size() != n || va.size() != n || mask.size() != n) {
    return Status::InvalidArgument("sample size mismatch");
  }

  FeatureVectorInto(vm, va, options_.subspace.channel, &scratch.features);
  const Vector& features = scratch.features;
  DetectionResult result;

  // Stage 0: input validation + Eq. 4 bad-data screen. Nodes whose
  // measurements are non-finite or grossly outside their normal
  // envelope are demoted to "unavailable", so the group selection below
  // re-selects around them exactly as it does for missing data. The
  // screened values never enter the subspace math: every evaluation
  // downstream restricts to coordinates of the effective mask.
  const sim::MissingMask* effective = &mask;
  {
    PW_TRACE_SCOPE("detect.stage.screen_us");
    PW_ASSIGN_OR_RETURN(effective,
                        ScreenBadData(vm, va, mask, scratch, &result));
  }

  // Stage 1: pick the detection group for every cluster under the
  // sample's availability mask (Eq. 10). Consecutive batch samples with
  // the same mask reuse the previous selection; the counters it would
  // have ticked are replayed so observability output stays identical.
  {
    PW_TRACE_SCOPE("detect.stage.groups_us");
    if (scratch.selection_valid && scratch.cached_mask == effective->missing) {
      const GroupSelectionStats& stats = scratch.group_stats;
      if (stats.out_of_cluster_selected > 0) {
        PW_OBS_COUNTER_ADD("detect.groups.out_of_cluster_selected",
                           stats.out_of_cluster_selected);
      }
      if (stats.fallback_alternate_side > 0) {
        PW_OBS_COUNTER_ADD("detect.groups.fallback_alternate_side",
                           stats.fallback_alternate_side);
      }
      if (stats.fallback_any_available > 0) {
        PW_OBS_COUNTER_ADD("detect.groups.fallback_any_available",
                           stats.fallback_any_available);
      }
    } else {
      SelectGroupsInto(*effective, &scratch.groups, &scratch.group_stats);
      scratch.cached_mask = effective->missing;
      scratch.selection_valid = true;
    }
  }
  const std::vector<SelectedGroup>& groups = scratch.groups;

  {
    PW_TRACE_SCOPE("detect.stage.gate_us");
    // Gate 1: does any cluster's normal-subspace residual exceed its
    // calibrated level? This separates "data looks normal (possibly with
    // gaps)" from "the grid state violates the normal model".
    PW_RETURN_IF_ERROR(ClusterNormalResidualsInto(features, groups,
                                                  batch_cache,
                                                  &scratch.residuals));
    const Vector& residuals = scratch.residuals;
    result.decision_score = 0.0;
    for (size_t c = 0; c < groups.size(); ++c) {
      double gate = groups[c].used_out_of_cluster
                        ? gates_[c].out_of_cluster
                        : gates_[c].in_cluster;
      result.decision_score =
          std::max(result.decision_score,
                   residuals[c] / std::max(gate, kProxFloor));
    }

    // Gate 2 (scale-free): is the sample better explained by some line's
    // outage subspace than by the normal subspace? Uses every available
    // measurement — the group machinery protects the node ranking, but
    // classification should never discard observed data.
    effective->AvailableIndicesInto(&scratch.pooled);
    if (scratch.pooled.empty()) {
      return Status::DataMissing("all measurements missing or screened");
    }
    GroupCoordinatesInto(scratch.pooled, &scratch.pooled_coords);
    PW_ASSIGN_OR_RETURN(
        double normal_residual,
        engine_.Evaluate(normal_class_model_, kClassFamilyKey, features,
                         scratch.pooled_coords, batch_cache));
    double best_line_residual = -1.0;
    for (size_t c = 0; c < case_lines_.size(); ++c) {
      PW_ASSIGN_OR_RETURN(
          double prox,
          engine_.Evaluate(line_class_models_[c], kClassFamilyKey, features,
                           scratch.pooled_coords, batch_cache));
      if (best_line_residual < 0.0 || prox < best_line_residual) {
        best_line_residual = prox;
      }
    }
    double ratio =
        best_line_residual / std::max(normal_residual, kProxFloor);
    result.decision_score =
        std::max(result.decision_score, ratio_gate_ / std::max(ratio, 1e-9));
  }

  {
    PW_TRACE_SCOPE("detect.stage.proximity_us");
    PW_RETURN_IF_ERROR(NodeScoresInto(features, groups, batch_cache,
                                      &result.node_scores));
  }
  if (result.decision_score <= 1.0) {
    result.outage_detected = false;
    return result;  // normal operation: F-hat is empty
  }
  result.outage_detected = true;
  PW_OBS_COUNTER_INC("detect.outages_flagged");

  PW_TRACE_SCOPE("detect.stage.localization_us");
  // The pooled coordinates from the gate stage are reused for the
  // class-model localization below.

  // Sorted node list N_t by scaled proximity, ascending (closest first).
  scratch.order.resize(n);
  std::vector<size_t>& order = scratch.order;
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.node_scores[a] < result.node_scores[b];
  });

  // Proximity rule: extend the prefix while nodes stay graph-connected
  // to the selected set and the score trend does not jump.
  scratch.selected.assign(n, false);
  std::vector<bool>& selected = scratch.selected;
  std::vector<size_t>& affected = result.affected_nodes;
  affected.push_back(order[0]);
  selected[order[0]] = true;
  double prev_score = std::max(result.node_scores[order[0]], kProxFloor);
  for (size_t rank = 1;
       rank < n && affected.size() < options_.max_affected_nodes; ++rank) {
    size_t node = order[rank];
    double score = result.node_scores[node];
    if (score > prev_score * options_.gap_factor) break;  // elbow
    bool adjacent = false;
    for (size_t nb : grid_->Neighbors(node)) {
      if (selected[nb]) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) break;  // must form a connected sub-component
    selected[node] = true;
    affected.push_back(node);
    prev_score = std::max(score, kProxFloor);
  }

  // A line outage always involves two endpoints: if only one node
  // cleared the rule, pull in its best-scoring neighbor.
  if (affected.size() == 1) {
    size_t seed = affected[0];
    size_t best = n;
    double best_score = 0.0;
    for (size_t nb : grid_->Neighbors(seed)) {
      double s = result.node_scores[nb];
      if (best == n || s < best_score) {
        best = nb;
        best_score = s;
      }
    }
    if (best != n) {
      selected[best] = true;
      affected.push_back(best);
    }
  }

  if (options_.localization == LocalizationMode::kProximityRule) {
    // Paper's pure pipeline: F-hat = lines whose both endpoints joined
    // the affected prefix.
    for (const grid::LineId& line : grid_->lines()) {
      if (selected[line.i] && selected[line.j]) {
        result.lines.push_back(line);
      }
    }
    return result;
  }

  // Line disambiguation: rank the trained line cases by the whitened
  // distance of the sample to each case's class model (all through the
  // same available coordinates, so residuals are comparable). The
  // node-ranking prefix localizes the neighborhood for the operator;
  // F-hat itself comes from the sharper class-model comparison.
  scratch.candidates.clear();
  std::vector<std::pair<double, size_t>>& candidates = scratch.candidates;
  for (size_t c = 0; c < case_lines_.size(); ++c) {
    PW_ASSIGN_OR_RETURN(double prox,
                        engine_.Evaluate(line_class_models_[c], kClassFamilyKey,
                                         features, scratch.pooled_coords,
                                         batch_cache));
    candidates.push_back({prox, c});
  }
  std::sort(candidates.begin(), candidates.end());
  if (options_.max_outage_lines >= 2 && !candidates.empty()) {
    // Multi-line identification: composed-pair scoring + greedy residual
    // peeling replace the line-window rule (docs/ROBUSTNESS.md).
    PW_RETURN_IF_ERROR(
        IdentifyOutageSet(features, batch_cache, scratch, &result));
    return result;
  }
  if (!candidates.empty()) {
    double best = std::max(candidates.front().first, kProxFloor);
    for (const auto& [prox, c] : candidates) {
      if (prox <= best * options_.line_window) {
        result.lines.push_back(case_lines_[c]);
      }
    }
  }
  return result;
}

PW_NO_ALLOC Result<double> OutageDetector::PeeledClassResidual(
    size_t c, ProximityEngine::BatchCache* batch_cache,
    DetectScratch& scratch) {
  // All class models share one whitened coefficient matrix, so the
  // regressor cached under kClassFamilyKey for the pooled coordinates is
  // reused verbatim; only the mean differs. Evaluating case c's model on
  // the peeled sample x - sum(d_a) measures the residual against the
  // composed mean mu_n + sum(d_a) + d_c — the linearized multi-outage
  // subspace.
  return engine_.Evaluate(line_class_models_[c], kClassFamilyKey,
                          scratch.peel_features, scratch.pooled_coords,
                          batch_cache);
}

Status OutageDetector::IdentifyOutageSet(const Vector& features,
                                         ProximityEngine::BatchCache* batch_cache,
                                         DetectScratch& scratch,
                                         DetectionResult* result) {
  PW_TRACE_SCOPE("detect.stage.peel_us");
  const std::vector<std::pair<double, size_t>>& candidates = scratch.candidates;
  const size_t num_cases = case_lines_.size();
  const size_t dim = features.size();
  scratch.peel_taken.assign(num_cases, false);

  // Baseline: normal-class residual over the pooled coordinates (the
  // same statistic the ratio gate used; the cached regressor makes this
  // a re-lookup, not a re-factorization).
  PW_ASSIGN_OR_RETURN(
      double r0, engine_.Evaluate(normal_class_model_, kClassFamilyKey,
                                  features, scratch.pooled_coords,
                                  batch_cache));
  r0 = std::max(r0, kProxFloor);

  // Resets peel_features to the sample with case c's mean shift
  // subtracted composed on top of whatever is already peeled.
  auto subtract_shift = [&](size_t c) {
    const Vector& case_mean = line_class_models_[c].mean;
    const Vector& normal_mean = normal_class_model_.mean;
    for (size_t i = 0; i < dim; ++i) {
      scratch.peel_features[i] -= case_mean[i] - normal_mean[i];
    }
  };
  auto reset_peel = [&] {
    scratch.peel_features.Assign(dim);
    for (size_t i = 0; i < dim; ++i) scratch.peel_features[i] = features[i];
  };

  // Appends case c with a confidence clamped to [0, 1] and forced
  // monotone non-increasing: each later line is conditioned on every
  // earlier one being real, so it can never be more certain.
  auto accept = [&](size_t c, double raw_confidence) {
    double conf = std::min(1.0, std::max(0.0, raw_confidence));
    if (!result->outage_set.empty()) {
      conf = std::min(conf, result->outage_set.back().confidence);
    }
    result->outage_set.push_back({case_lines_[c], conf});
    result->lines.push_back(case_lines_[c]);
    scratch.peel_taken[c] = true;
  };

  // Greedy residual peeling anchored on the proximity winner. The
  // anchor is unconditional — the outage gate already fired, so an
  // identification is always owed, and the anchor is exactly the line a
  // single-line detector would report. Every deeper line c must then
  // clear its calibrated threshold on the normalized residual drop
  //   delta_c = (r_before - r_after) / ||R d_c||^2,
  // which is ~ +1 when the peeled residual really contains c's mean
  // shift and hovers in the spurious-null range otherwise. The argmin
  // over composed residuals is searched over ALL remaining cases: true
  // second lines routinely rank far down the single-line ordering
  // because the anchor's shift dominates their unpeeled residual.
  reset_peel();
  const size_t anchor = candidates.front().second;
  accept(anchor, 1.0 - std::max(candidates.front().first, kProxFloor) / r0);
  subtract_shift(anchor);

  while (result->outage_set.size() < options_.max_outage_lines) {
    PW_ASSIGN_OR_RETURN(
        double r_base,
        engine_.Evaluate(normal_class_model_, kClassFamilyKey,
                         scratch.peel_features, scratch.pooled_coords,
                         batch_cache));
    r_base = std::max(r_base, kProxFloor);
    double best = -1.0;
    size_t best_case = num_cases;
    for (size_t c = 0; c < num_cases; ++c) {
      if (scratch.peel_taken[c]) continue;
      PW_ASSIGN_OR_RETURN(double r, PeeledClassResidual(c, batch_cache,
                                                        scratch));
      if (best < 0.0 || r < best) {
        best = r;
        best_case = c;
      }
    }
    if (best_case == num_cases) break;  // every case taken
    // Normalizer over the SAME pooled coordinates as the drop itself:
    // under missing data both shrink together, keeping the delta
    // statistic on the scale the thresholds were calibrated at.
    PW_ASSIGN_OR_RETURN(
        double energy,
        engine_.Evaluate(normal_class_model_, kClassFamilyKey,
                         line_class_models_[best_case].mean,
                         scratch.pooled_coords, batch_cache));
    const double drop = (r_base - best) / std::max(energy, kProxFloor);
    if (drop <= peel_tau_[best_case * num_cases + anchor]) {
      break;  // stop rule: the best drop looks like a spurious null
    }
    PW_OBS_COUNTER_INC("detect.multi.peel_accepted");
    accept(best_case, 1.0 - best / r_base);
    subtract_shift(best_case);
  }
  PW_OBS_HISTOGRAM_OBSERVE("detect.multi.set_size", result->outage_set.size(),
                           ::phasorwatch::obs::DefaultIterationBuckets());
  return Status::OK();
}

}  // namespace phasorwatch::detect
