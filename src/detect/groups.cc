#include "detect/groups.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace phasorwatch::detect {
namespace {

// Worst-case capability of node `k` over every affected node in the
// cluster: min over i in C of p_{i,k}. This is the score Eq. 8's
// intersection ranks by.
double ClusterScore(const CapabilityTable& caps,
                    const std::vector<size_t>& cluster, size_t k) {
  double worst = 1.0;
  bool any = false;
  for (size_t i : cluster) {
    // Nodes without any trainable incident line (e.g. a bus whose only
    // line would island the grid) have an all-zero capability row; they
    // cannot be detected by anyone and must not veto the cluster.
    double best_for_i = 0.0;
    for (size_t node = 0; node < caps.NodeLevel().cols(); ++node) {
      best_for_i = std::max(best_for_i, caps.NodeLevel(i, node));
    }
    if (best_for_i == 0.0) continue;
    any = true;
    worst = std::min(worst, caps.NodeLevel(i, k));
  }
  return any ? worst : 0.0;
}

}  // namespace

DetectionGroupBuilder::DetectionGroupBuilder(const sim::PmuNetwork& network,
                                             const CapabilityTable& capabilities,
                                             DetectionGroupOptions options)
    : network_(network),
      capabilities_(capabilities),
      options_(std::move(options)) {}

std::vector<size_t> DetectionGroupBuilder::OrthogonalMembers(
    const linalg::Matrix& loadings, const std::vector<size_t>& candidates,
    size_t max_members) const {
  // Greedy: repeatedly take the candidate whose loading row has the
  // largest norm after deflating by the rows already chosen. Stops when
  // the residual norm collapses (remaining rows are spanned).
  const size_t dim = loadings.cols();
  if (dim == 0 || candidates.empty()) return {};

  std::vector<linalg::Vector> residual;
  residual.reserve(candidates.size());
  double max_norm = 0.0;
  for (size_t node : candidates) {
    residual.push_back(loadings.Row(node));
    max_norm = std::max(max_norm, residual.back().Norm());
  }
  if (max_norm == 0.0) return {};
  // "Most orthogonal" cutoff: a candidate only joins while its loading
  // still has most of its energy outside the span of the chosen ones.
  // The paper notes this naive set is usually small.
  const double threshold = 0.55 * max_norm;

  std::vector<size_t> picked;
  std::vector<bool> used(candidates.size(), false);
  std::vector<linalg::Vector> basis;
  while (picked.size() < max_members) {
    size_t best = candidates.size();
    double best_norm = threshold;
    for (size_t idx = 0; idx < candidates.size(); ++idx) {
      if (used[idx]) continue;
      double norm = residual[idx].Norm();
      if (norm > best_norm) {
        best_norm = norm;
        best = idx;
      }
    }
    if (best == candidates.size()) break;
    used[best] = true;
    picked.push_back(candidates[best]);
    linalg::Vector dir = residual[best];
    dir *= 1.0 / residual[best].Norm();
    basis.push_back(dir);
    for (size_t idx = 0; idx < candidates.size(); ++idx) {
      if (used[idx]) continue;
      double dot = residual[idx].Dot(dir);
      for (size_t c = 0; c < dim; ++c) residual[idx][c] -= dot * dir[c];
    }
  }
  return picked;
}

ClusterDetectionGroup DetectionGroupBuilder::Build(
    size_t cluster, const linalg::Matrix& cluster_constraint_basis) const {
  PW_CHECK_LT(cluster, network_.num_clusters());
  const std::vector<size_t>& members = network_.Cluster(cluster);
  const size_t n = network_.num_nodes();

  std::vector<size_t> inside = members;
  std::vector<size_t> outside;
  outside.reserve(n - inside.size());
  for (size_t i = 0; i < n; ++i) {
    if (network_.ClusterOf(i) != cluster) outside.push_back(i);
  }

  auto build_side = [&](const std::vector<size_t>& candidates) {
    // Naive seed: most-orthogonal loadings within the candidate set,
    // capped low — the whole point of Fig. 4 is that this set alone is
    // not enough.
    size_t naive_cap = std::min<size_t>(4, options_.max_group_size);
    std::vector<size_t> naive = OrthogonalMembers(
        cluster_constraint_basis, candidates, naive_cap);

    // Learned members (Eq. 8): capability over every cluster node.
    std::vector<std::pair<double, size_t>> scored;
    scored.reserve(candidates.size());
    for (size_t k : candidates) {
      scored.push_back({ClusterScore(capabilities_, members, k), k});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    std::vector<size_t> learned;
    for (const auto& [score, k] : scored) {
      if (score >= options_.capability_threshold &&
          learned.size() < options_.max_group_size) {
        learned.push_back(k);
      }
    }
    // Ensure a workable group even when the threshold filters everyone:
    // take the best-scoring nodes.
    size_t need = std::min(options_.min_group_size, scored.size());
    if (learned.size() < need) {
      PW_OBS_COUNTER_INC("groups.builder.min_size_backfills");
    }
    for (const auto& [score, k] : scored) {
      if (learned.size() >= need) break;
      if (std::find(learned.begin(), learned.end(), k) == learned.end()) {
        learned.push_back(k);
      }
    }

    // Blend per Fig. 4's x-axis: naive members plus the top
    // learned_fraction of the learned ranking.
    size_t take = static_cast<size_t>(
        std::lround(options_.learned_fraction *
                    static_cast<double>(learned.size())));
    std::vector<size_t> group = naive;
    for (size_t idx = 0; idx < take; ++idx) {
      if (std::find(group.begin(), group.end(), learned[idx]) == group.end()) {
        group.push_back(learned[idx]);
      }
    }
    if (group.empty() && !candidates.empty()) {
      // Last resort: the single best-capability candidate.
      PW_OBS_COUNTER_INC("groups.builder.last_resort_singletons");
      group.push_back(scored.front().second);
    }
    if (group.size() > options_.max_group_size) {
      group.resize(options_.max_group_size);
    }
    std::sort(group.begin(), group.end());
    return group;
  };

  ClusterDetectionGroup out;
  out.in_cluster = build_side(inside);
  out.out_of_cluster = build_side(outside);
  PW_OBS_COUNTER_INC("groups.builder.clusters_built");
  return out;
}

}  // namespace phasorwatch::detect
