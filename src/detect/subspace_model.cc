#include "detect/subspace_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/status.h"
#include "linalg/eigen_sym.h"
#include "linalg/svd.h"

namespace phasorwatch::detect {
namespace {

using linalg::Matrix;
using linalg::Subspace;
using linalg::Vector;

// Soft intersection of subspaces: eigenvectors of the averaged projector
// (1/m) sum_k B_k B_k^T with eigenvalue >= min_eigenvalue. An eigenvalue
// of 1 means the direction lies in every member subspace; a slightly
// smaller threshold tolerates the noise in data-learned bases.
Subspace SoftIntersection(const std::vector<const Subspace*>& parts,
                          double min_eigenvalue) {
  PW_CHECK(!parts.empty());
  if (parts.size() == 1) return *parts[0];
  const size_t n = parts[0]->ambient_dim();
  Matrix avg(n, n);
  size_t nonempty = 0;
  for (const Subspace* s : parts) {
    if (s->trivial()) continue;
    PW_CHECK_EQ(s->ambient_dim(), n);
    ++nonempty;
    const Matrix& b = s->basis();
    // avg += B B^T
    for (size_t k = 0; k < b.cols(); ++k) {
      for (size_t i = 0; i < n; ++i) {
        double bi = b(i, k);
        if (bi == 0.0) continue;
        for (size_t j = 0; j < n; ++j) avg(i, j) += bi * b(j, k);
      }
    }
  }
  if (nonempty == 0) return Subspace();
  avg *= 1.0 / static_cast<double>(nonempty);

  auto eig = linalg::ComputeSymmetricEigen(avg);
  if (!eig.ok()) return Subspace();
  std::vector<Vector> kept;
  for (size_t k = 0; k < eig->eigenvalues.size(); ++k) {
    if (eig->eigenvalues[k] >= min_eigenvalue) {
      kept.push_back(eig->eigenvectors.Col(k));
    }
  }
  if (kept.empty()) {
    // Degenerate case: no direction is shared strongly enough. Fall back
    // to the single most-shared direction so downstream proximities stay
    // informative instead of collapsing to zero.
    kept.push_back(eig->eigenvectors.Col(0));
  }
  return Subspace::FromOrthonormal(Matrix::FromColumns(kept));
}

// The same averaged-projector spectrum through its Gram matrix, for
// large ambient dimensions (docs/SPARSE.md): avg = W W^T with
// W = [B_1 ... B_m] / sqrt(m), so every eigenvalue >= min_eigenvalue
// (> 0) lives in span(W) and comes from the r-by-r Gram matrix
// G = W^T W, where r = sum of member ranks << n. An eigenpair
// G v = lambda v lifts to the unit eigenvector u = W v / sqrt(lambda)
// of avg, turning the O(n^3) Jacobi sweep into O(n r^2). The kept
// subspace equals the dense path's up to roundoff — not bit-identical,
// which is why small grids stay on the dense path.
Subspace SoftIntersectionLowRank(const std::vector<const Subspace*>& parts,
                                 double min_eigenvalue) {
  PW_CHECK(!parts.empty());
  PW_CHECK_GT(min_eigenvalue, 0.0);
  if (parts.size() == 1) return *parts[0];
  const size_t n = parts[0]->ambient_dim();
  size_t nonempty = 0;
  size_t r = 0;
  for (const Subspace* s : parts) {
    if (s->trivial()) continue;
    PW_CHECK_EQ(s->ambient_dim(), n);
    ++nonempty;
    r += s->dim();
  }
  if (nonempty == 0) return Subspace();

  Matrix w(n, r);
  const double scale = 1.0 / std::sqrt(static_cast<double>(nonempty));
  size_t col = 0;
  for (const Subspace* s : parts) {
    if (s->trivial()) continue;
    const Matrix& b = s->basis();
    for (size_t k = 0; k < b.cols(); ++k, ++col) {
      for (size_t i = 0; i < n; ++i) w(i, col) = scale * b(i, k);
    }
  }

  Matrix gram(r, r);
  for (size_t a = 0; a < r; ++a) {
    for (size_t c = a; c < r; ++c) {
      double dot = 0.0;
      for (size_t i = 0; i < n; ++i) dot += w(i, a) * w(i, c);
      gram(a, c) = dot;
      gram(c, a) = dot;
    }
  }

  auto eig = linalg::ComputeSymmetricEigen(gram);
  if (!eig.ok()) return Subspace();
  auto lift = [&](size_t k) {
    Vector u(n);
    const double inv = 1.0 / std::sqrt(eig->eigenvalues[k]);
    for (size_t a = 0; a < r; ++a) {
      double va = eig->eigenvectors(a, k);
      if (va == 0.0) continue;
      for (size_t i = 0; i < n; ++i) u[i] += inv * va * w(i, a);
    }
    return u;
  };
  std::vector<Vector> kept;
  for (size_t k = 0; k < eig->eigenvalues.size(); ++k) {
    if (eig->eigenvalues[k] >= min_eigenvalue) kept.push_back(lift(k));
  }
  if (kept.empty()) {
    // Same degenerate fallback as the dense path: the single
    // most-shared direction. Orthonormal member bases give
    // trace(G) = r / m, so the top eigenvalue is strictly positive.
    kept.push_back(lift(0));
  }
  return Subspace::FromOrthonormal(Matrix::FromColumns(kept));
}

}  // namespace

double SubspaceModel::Proximity(const linalg::Vector& x) const {
  PW_CHECK_EQ(x.size(), mean.size());
  // ||B^T z||^2: squared component of the deviation inside the
  // constraint directions. The centering (x - mean) folds into the dot
  // loop, so the hot path allocates nothing.
  double sum = 0.0;
  const Matrix& b = constraints.basis();
  for (size_t k = 0; k < b.cols(); ++k) {
    double dot = 0.0;
    for (size_t i = 0; i < x.size(); ++i) dot += b(i, k) * (x[i] - mean[i]);
    sum += dot * dot;
  }
  return sum;
}

Matrix FeatureMatrix(const sim::PhasorDataSet& data, PhasorChannel channel) {
  switch (channel) {
    case PhasorChannel::kMagnitude:
      return data.vm;
    case PhasorChannel::kAngle:
      return data.va;
    case PhasorChannel::kBoth: {
      const size_t n = data.num_nodes();
      const size_t t = data.num_samples();
      Matrix stacked(2 * n, t);
      for (size_t i = 0; i < n; ++i) {
        for (size_t s = 0; s < t; ++s) {
          stacked(i, s) = data.vm(i, s);
          stacked(n + i, s) = data.va(i, s);
        }
      }
      return stacked;
    }
  }
  return data.va;
}

Vector FeatureVector(const Vector& vm, const Vector& va,
                     PhasorChannel channel) {
  Vector out;
  FeatureVectorInto(vm, va, channel, &out);
  return out;
}

PW_NO_ALLOC void FeatureVectorInto(const Vector& vm, const Vector& va,
                                   PhasorChannel channel, Vector* out) {
  switch (channel) {
    case PhasorChannel::kMagnitude:
      *out = vm;
      return;
    case PhasorChannel::kAngle:
      *out = va;
      return;
    case PhasorChannel::kBoth: {
      out->Assign(vm.size() + va.size());
      Vector& stacked = *out;
      for (size_t i = 0; i < vm.size(); ++i) stacked[i] = vm[i];
      for (size_t i = 0; i < va.size(); ++i) stacked[vm.size() + i] = va[i];
      return;
    }
  }
  *out = va;
}

Result<SubspaceModel> LearnSubspaceModel(const sim::PhasorDataSet& data,
                                         const SubspaceModelOptions& options) {
  Matrix x = FeatureMatrix(data, options.channel);
  if (x.cols() < 2) {
    return Status::InvalidArgument(
        "subspace learning needs at least 2 samples");
  }
  const size_t n = x.rows();
  const size_t t = x.cols();

  // Center each node's series (rows) around its training mean.
  SubspaceModel model;
  model.mean = Vector(n);
  for (size_t i = 0; i < n; ++i) {
    double m = 0.0;
    for (size_t c = 0; c < t; ++c) m += x(i, c);
    m /= static_cast<double>(t);
    model.mean[i] = m;
    for (size_t c = 0; c < t; ++c) x(i, c) -= m;
  }

  // Left singular vectors and values of the centered data. For wide
  // data (T > N) go through the N-by-N scatter matrix and a symmetric
  // eigensolve — O(N^2 T + N^3) instead of Jacobi-SVD's O(N^2 T) per
  // sweep — which keeps training cheap at paper-scale sample counts.
  Matrix u;
  Vector s;
  if (t > n) {
    Matrix scatter(n, n);
    for (size_t c = 0; c < t; ++c) {
      for (size_t i = 0; i < n; ++i) {
        double xi = x(i, c);
        if (xi == 0.0) continue;
        for (size_t j = i; j < n; ++j) scatter(i, j) += xi * x(j, c);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < i; ++j) scatter(i, j) = scatter(j, i);
    }
    PW_ASSIGN_OR_RETURN(linalg::SymmetricEigenResult eig,
                        linalg::ComputeSymmetricEigen(scatter));
    u = std::move(eig.eigenvectors);
    s = Vector(n);
    for (size_t j = 0; j < n; ++j) {
      s[j] = std::sqrt(std::max(eig.eigenvalues[j], 0.0));
    }
  } else {
    PW_ASSIGN_OR_RETURN(linalg::SvdResult svd, linalg::ComputeSvd(x));
    u = std::move(svd.u);
    s = std::move(svd.singular_values);
  }
  model.singular_values = s;

  // Keep the left singular vectors with the smallest singular values as
  // constraint directions (Sec. IV-A / [12]).
  const size_t k_total = s.size();
  double s_max = k_total > 0 ? s[0] : 0.0;
  size_t num_constraints = 0;
  for (size_t j = 0; j < k_total; ++j) {
    if (s[j] <= options.constraint_rel_tol * s_max) {
      ++num_constraints;
    }
  }
  num_constraints = std::clamp(num_constraints, options.min_constraints,
                               std::min(options.max_constraints, k_total));

  std::vector<size_t> cols(num_constraints);
  for (size_t j = 0; j < num_constraints; ++j) {
    cols[j] = k_total - num_constraints + j;
  }
  model.constraints = Subspace::FromOrthonormal(u.SelectCols(cols));
  if (options.keep_full_basis) {
    model.full_basis = std::move(u);
  }
  return model;
}

SubspaceModel MakeWhitenedClassModel(const SubspaceModel& reference,
                                     Vector mean, size_t num_samples) {
  PW_CHECK(!reference.full_basis.empty());
  PW_CHECK_GT(num_samples, 1u);
  const Matrix& u = reference.full_basis;
  const Vector& s = reference.singular_values;
  const size_t k = s.size();
  PW_CHECK_EQ(u.cols(), k);

  // Per-direction standard deviations; ridge at the bottom quartile so
  // noise-floor directions do not dominate the distance.
  Vector sigma(k);
  double denom = std::sqrt(static_cast<double>(num_samples - 1));
  for (size_t j = 0; j < k; ++j) sigma[j] = s[j] / denom;
  double ridge = std::max(sigma[(3 * k) / 4], 1e-12);

  Matrix whitened = u;
  for (size_t j = 0; j < k; ++j) {
    double w = 1.0 / std::sqrt(sigma[j] * sigma[j] + ridge * ridge);
    for (size_t i = 0; i < whitened.rows(); ++i) whitened(i, j) *= w;
  }

  SubspaceModel model;
  model.mean = std::move(mean);
  model.singular_values = s;
  // Deliberately a non-orthonormal coefficient matrix (see header).
  model.constraints = Subspace::FromOrthonormal(std::move(whitened));
  return model;
}

NodeSubspaces BuildNodeSubspaces(
    const std::vector<const SubspaceModel*>& line_models, double cos_tol,
    bool lowrank_composition) {
  PW_CHECK(!line_models.empty());
  const size_t n = line_models[0]->ambient_dim();

  // Shared reference mean: average of the member means.
  Vector mean(n);
  for (const SubspaceModel* m : line_models) {
    PW_CHECK_EQ(m->ambient_dim(), n);
    mean += m->mean;
  }
  mean *= 1.0 / static_cast<double>(line_models.size());

  NodeSubspaces out;
  out.union_model.mean = mean;
  out.intersection_model.mean = mean;

  // Paper's union of outage solution sets == shared constraints.
  std::vector<const Subspace*> bases;
  bases.reserve(line_models.size());
  for (const SubspaceModel* m : line_models) bases.push_back(&m->constraints);
  out.union_model.constraints = lowrank_composition
                                    ? SoftIntersectionLowRank(bases, cos_tol)
                                    : SoftIntersection(bases, cos_tol);

  // Paper's intersection of solution sets == all constraints combined.
  std::vector<Subspace> all;
  all.reserve(line_models.size());
  for (const SubspaceModel* m : line_models) all.push_back(m->constraints);
  out.intersection_model.constraints = Subspace::UnionAll(all);
  return out;
}

}  // namespace phasorwatch::detect
