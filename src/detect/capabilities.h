#ifndef PHASORWATCH_DETECT_CAPABILITIES_H_
#define PHASORWATCH_DETECT_CAPABILITIES_H_

#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "detect/ellipse.h"
#include "grid/grid.h"
#include "linalg/matrix.h"
#include "sim/measurement.h"

namespace phasorwatch::detect {

/// Per-case detection capabilities (Eq. 5) and their node-level
/// aggregation (Eqs. 6-7).
///
/// For a training outage case F = {e_ij}, node k's capability p_k(F) is
/// the fraction of outage samples whose 2-D phasor point at node k falls
/// outside k's normal-operation ellipse, normalized by the fraction of
/// normal samples that fall inside (Eq. 5). The node-level p_{i,k}
/// aggregates over every training case involving node i with the
/// inclusion-exclusion formula of Eq. 7.
class CapabilityTable {
 public:
  /// Builds capabilities from per-node ellipses, the normal-operation
  /// data (for Eq. 5's denominator), and the outage training data of
  /// every valid line case. `case_lines[c]` names the outaged line of
  /// `outage_data[c]`.
  PW_NODISCARD static Result<CapabilityTable> Build(
      const grid::Grid& grid, const std::vector<EllipseModel>& ellipses,
      const sim::PhasorDataSet& normal_data,
      const std::vector<grid::LineId>& case_lines,
      const std::vector<const sim::PhasorDataSet*>& outage_data);

  size_t num_nodes() const { return per_case_.empty() ? node_level_.rows() : per_case_[0].size(); }
  size_t num_cases() const { return per_case_.size(); }

  /// p_k(F_c): capability of node k for training case c (Eq. 5).
  double PerCase(size_t case_idx, size_t node_k) const;

  /// p_{i,k}: capability of node k for any outage involving node i
  /// (Eq. 7). Rows index the affected node i, columns the detector k.
  const linalg::Matrix& NodeLevel() const { return node_level_; }
  double NodeLevel(size_t node_i, size_t node_k) const {
    return node_level_(node_i, node_k);
  }

  /// Literal inclusion-exclusion evaluation of Eq. 7 over explicit
  /// per-case probabilities. Exposed for testing: with independent
  /// cases it equals 1 - prod(1 - p). Requires |probs| <= 20.
  static double InclusionExclusion(const std::vector<double>& probs);

  /// An empty table; populate via Build().
  CapabilityTable() = default;

  /// Rebuilds a table from stored data (model persistence).
  /// `per_case[c]` holds p_k(F_c) by node; `node_level` is the Eq.-7
  /// aggregation (rows: affected node, cols: detector).
  static CapabilityTable FromData(std::vector<std::vector<double>> per_case,
                                  linalg::Matrix node_level);

  /// All per-case capability rows (persistence; aligned with the
  /// training case order).
  const std::vector<std::vector<double>>& PerCaseRows() const {
    return per_case_;
  }

 private:
  std::vector<std::vector<double>> per_case_;  // [case][node]
  linalg::Matrix node_level_;                  // [affected node][detector]
};

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_CAPABILITIES_H_
