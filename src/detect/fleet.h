#ifndef PHASORWATCH_DETECT_FLEET_H_
#define PHASORWATCH_DETECT_FLEET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "detect/session.h"
#include "obs/quantile.h"
#include "sim/fault_injection.h"

namespace phasorwatch::detect {

/// Index of a tenant within one FleetEngine (dense, assigned by
/// AddTenant in call order).
using TenantId = size_t;

/// Sizing of the fleet engine (docs/FLEET.md).
struct FleetOptions {
  /// Shard drain threads. Each tenant is pinned to one shard
  /// (round-robin at AddTenant), so per-tenant frame order is
  /// preserved without any cross-shard coordination.
  size_t num_shards = 2;
  /// Per-shard SPSC frame ring capacity (rounded up to a power of
  /// two). When a shard's ring is full, Submit rejects — backpressure
  /// is explicit, never a blocked producer.
  size_t queue_capacity = 1024;
};

/// One monitored grid in the fleet.
struct TenantConfig {
  /// Tenant label for event logs and per-tenant metric rows.
  std::string name;
  /// Trained model; tenants on identical grids may share one instance
  /// (Detect is concurrency-safe on a trained detector).
  std::shared_ptr<OutageDetector> detector;
  StreamOptions stream;
  /// Deployment configuration for file-based hot reload
  /// (ReloadModelFromFile verifies the PWDET04 fingerprint against
  /// these). Optional; reload-from-file fails without them. Not owned,
  /// must outlive the engine.
  const grid::Grid* grid = nullptr;
  const sim::PmuNetwork* network = nullptr;
};

/// One per-tenant metrics row (grid_monitor --metrics; any thread).
struct TenantStatus {
  TenantId id = 0;
  std::string name;
  size_t shard = 0;
  uint64_t samples = 0;
  uint64_t samples_rejected = 0;
  uint64_t frames_dropped = 0;
  uint64_t frames_stale = 0;
  uint64_t alarms_raised = 0;
  uint64_t alarms_cleared = 0;
  bool alarm_active = false;
};

/// Sharded multi-tenant streaming engine: N shard drain loops pinned
/// to a dedicated thread pool, each draining a bounded lock-free SPSC
/// frame queue into its tenants' TenantSessions (ROADMAP item 2's
/// "thousands of monitored grids in one process").
///
/// Design (docs/FLEET.md):
///  - Ingest: Submit() stamps the frame, pushes it onto the owning
///    shard's ring, and returns. A full ring rejects with
///    kResourceExhausted and ticks `fleet.frames_shed` — the producer
///    is never blocked; shedding policy belongs to the caller.
///  - Ordering: a tenant lives on exactly one shard, so its frames are
///    processed in submission order by one thread (the TenantSession
///    producer contract holds by construction).
///  - Lifecycle: ReloadModel/ReloadModelFromFile hot-swap a tenant's
///    model (atomic shared_ptr; in-flight frames finish on the old
///    model). SnapshotTenant/RestoreTenant run on the owning shard's
///    drain thread while the engine runs, so they never race the
///    stream.
///  - Observability: aggregate detection latency (submit to event) in
///    the `fleet.frame_us` quantile histogram plus per-shard
///    `fleet.shard<k>.frame_us` histograms; `fleet.frames_submitted`,
///    `fleet.frames_shed`, `fleet.frames_processed` counters.
///
/// Threading contract: Submit() is single-producer (one ingest thread,
/// as in a PDC feed) — observers, reloads, snapshots, and TenantRows
/// may come from any thread. AddTenant is setup-time only (before
/// Start). Start/Stop/Flush belong to the controlling thread.
class FleetEngine {
 public:
  explicit FleetEngine(const FleetOptions& options = {});
  /// Stops the shards (draining already-accepted frames) and joins.
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Registers a tenant (round-robin shard pinning). Engine must not
  /// be running. The detector must be non-null and trained.
  PW_NODISCARD Result<TenantId> AddTenant(TenantConfig config);

  /// Launches the shard drain loops on the engine's own thread pool.
  void Start();
  /// Drains every accepted frame, then stops and joins the shard
  /// threads. Idempotent; the engine may be Start()ed again.
  void Stop();
  /// Blocks until every frame accepted so far has been processed.
  /// No-op when the engine is not running.
  void Flush();

  /// Enqueues one frame for `tenant`. Returns kResourceExhausted (and
  /// ticks `fleet.frames_shed`) when the shard's ring is full — never
  /// blocks. Single ingest thread.
  PW_NODISCARD Status Submit(TenantId tenant, sim::MeasurementFrame frame);

  /// Hot-swaps the tenant's model (any thread, engine running or not).
  /// In-flight frames finish on the old model; the batch memo clears on
  /// the first frame under the new one.
  PW_NODISCARD Status ReloadModel(TenantId tenant,
                                  std::shared_ptr<OutageDetector> model);
  /// Loads a PWDET04 file against the tenant's configured grid/network
  /// (fingerprint-checked) and hot-swaps it in. The slow load runs on
  /// the calling thread, off the shard's hot path.
  PW_NODISCARD Status ReloadModelFromFile(TenantId tenant,
                                          const std::string& path);

  /// Consistent snapshot of one tenant's detection state. While the
  /// engine runs, executes on the owning shard's drain thread (between
  /// frames); quiesced engines snapshot inline.
  PW_NODISCARD Result<TenantSnapshot> SnapshotTenant(TenantId tenant);
  /// Restores a tenant's detection state (same execution rules).
  PW_NODISCARD Status RestoreTenant(TenantId tenant,
                                    const TenantSnapshot& snapshot);

  /// Per-tenant metric rows, pollable from any thread while running.
  std::vector<TenantStatus> TenantRows() const;

  /// Aggregate submit-to-event latency across all shards (merged
  /// per-shard snapshots; p99/p999 are the fleet tail numbers).
  obs::QuantileHistogram::Snapshot LatencySnapshot() const;

  /// Direct access for tests and callers needing session observers.
  /// The session's producer methods belong to the owning shard once
  /// the engine is running.
  TenantSession& session(TenantId tenant);

  size_t num_shards() const { return shards_.size(); }
  size_t num_tenants() const { return sessions_.size(); }
  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t frames_submitted() const {
    return frames_submitted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_shed() const {
    return frames_shed_.load(std::memory_order_relaxed);
  }
  uint64_t frames_processed() const;

 private:
  struct Shard;

  /// One queued frame: the owning session, the payload, and the
  /// submit-time stamp the latency series is measured from.
  struct FrameTask {
    TenantSession* session = nullptr;
    sim::MeasurementFrame frame;
    double enqueue_us = 0.0;
  };

  void DrainLoop(size_t shard_index);
  /// Executes and clears the shard's pending control hooks (drain
  /// thread only; the cold half of the drain loop).
  void RunControlHooks(Shard& shard);
  /// Runs `fn` on the shard's drain thread (between frames) when the
  /// engine runs, inline otherwise. Blocks until done.
  void RunOnShard(size_t shard_index, const std::function<void()>& fn);
  PW_NODISCARD Status CheckTenant(TenantId tenant) const;

  FleetOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<TenantSession>> sessions_;
  std::vector<TenantConfig> configs_;  // parallel to sessions_
  std::vector<size_t> tenant_shard_;   // parallel to sessions_

  /// Drain threads; sized num_shards + 1 so every shard gets a
  /// dedicated worker (see thread_pool.h: degree P = P-1 workers).
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::atomic<uint64_t> frames_submitted_{0};
  std::atomic<uint64_t> frames_shed_{0};
};

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_FLEET_H_
