#ifndef PHASORWATCH_DETECT_GROUPS_H_
#define PHASORWATCH_DETECT_GROUPS_H_

#include <vector>

#include "common/status.h"
#include "detect/capabilities.h"
#include "detect/subspace_model.h"
#include "sim/pmu_network.h"

namespace phasorwatch::detect {

/// Tuning knobs for detection-group formation (Sec. IV-B).
struct DetectionGroupOptions {
  /// "p approx 1" threshold of Eq. 8: nodes whose learned capability for
  /// every member of the cluster is at least this join the group.
  double capability_threshold = 0.90;
  /// Minimum members per group; when the Eq. 8 set is smaller the
  /// highest-scoring remaining nodes fill it up.
  size_t min_group_size = 3;
  /// Cap on members per group (keeps proximity evaluation cheap).
  size_t max_group_size = 12;
  /// Fraction of the learned (Eq. 8) members included, on top of the
  /// naive PCA-orthogonal members. 1.0 = the proposed robust group,
  /// 0.0 = naive group only. This is the x-axis of Fig. 4.
  double learned_fraction = 1.0;
};

/// The two alternative member sets of one cluster's detection group
/// (Eq. 8): in-cluster members used when the cluster's data is complete,
/// and out-of-cluster members used when any of the cluster's data is
/// missing (Eq. 10 picks between them at query time).
struct ClusterDetectionGroup {
  std::vector<size_t> in_cluster;
  std::vector<size_t> out_of_cluster;
};

/// Builds per-cluster detection groups.
///
/// The "naive" seed members are nodes with mutually orthogonal loadings
/// in the cluster's outage subspaces (found by greedy row-space
/// Gram-Schmidt over the stacked constraint bases of the cluster's
/// nodes). Learned members come from the capability table: nodes whose
/// p_{k,i} clears the threshold for every k in the cluster, ranked by
/// their worst-case capability. `learned_fraction` blends the two, which
/// reproduces the Fig. 4 ablation.
class DetectionGroupBuilder {
 public:
  DetectionGroupBuilder(const sim::PmuNetwork& network,
                        const CapabilityTable& capabilities,
                        DetectionGroupOptions options);

  /// Group for cluster `c`. `cluster_constraint_basis` stacks the
  /// constraint bases (columns) of the union models of the cluster's
  /// nodes; its rows give each node's loading used for the naive pick.
  ClusterDetectionGroup Build(size_t cluster,
                              const linalg::Matrix& cluster_constraint_basis) const;

  /// Naive member selection only (exposed for tests/ablation): greedy
  /// most-orthogonal rows of the loading matrix.
  std::vector<size_t> OrthogonalMembers(
      const linalg::Matrix& loadings, const std::vector<size_t>& candidates,
      size_t max_members) const;

 private:
  const sim::PmuNetwork& network_;
  const CapabilityTable& capabilities_;
  DetectionGroupOptions options_;
};

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_GROUPS_H_
