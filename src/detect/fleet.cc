#include "detect/fleet.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/spsc_queue.h"
#include "common/status.h"
#include "common/sync.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace phasorwatch::detect {
namespace {

// Empty-poll backoff for the drain loops: spin-yield first (a frame is
// usually microseconds away at PMU rates), then sleep so an idle fleet
// does not burn a core — essential on small machines where producer
// and shards share cores.
constexpr size_t kSpinPollsBeforeSleep = 64;
constexpr auto kIdleSleep = std::chrono::microseconds(200);

}  // namespace

/// One shard: the frame ring, its drain-side accounting, a small
/// control-hook inbox (snapshot/restore run between frames), and the
/// shard's latency histogram.
struct FleetEngine::Shard {
  explicit Shard(size_t queue_capacity, size_t index)
      : queue(queue_capacity),
        latency(obs::MetricsRegistry::Global().GetQuantile(
            "fleet.shard" + std::to_string(index) + ".frame_us",
            obs::DefaultLatencyQuantileOptions())) {}

  // pw-lint: allow(sync-discipline) SPSC ring with its own contract.
  SpscQueue<FrameTask> queue;
  /// Frames accepted onto the ring (submit side) / fully processed
  /// (drain side). Flush converges when they match on every shard.
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> processed{0};

  /// Control-hook inbox: RunOnShard pushes, the drain loop executes
  /// between frames. The atomic flag keeps the steady-state drain loop
  /// to one relaxed load; the mutex only guards the cold vector.
  Mutex control_mu{lock_rank::kFleetControl};
  std::vector<std::function<void()>> control_hooks
      PW_GUARDED_BY(control_mu);
  std::atomic<bool> has_control{false};

  /// Registry-owned (never deleted); per-shard submit-to-event latency.
  obs::QuantileHistogram* const latency;
};

FleetEngine::FleetEngine(const FleetOptions& options) : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  PW_CHECK_GT(options_.queue_capacity, 0u);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.queue_capacity, s));
  }
  PW_OBS_GAUGE_SET("fleet.shards", shards_.size());
}

FleetEngine::~FleetEngine() { Stop(); }

Result<TenantId> FleetEngine::AddTenant(TenantConfig config) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "AddTenant while the engine is running (stop it first)");
  }
  if (config.detector == nullptr) {
    return Status::InvalidArgument("tenant \"" + config.name +
                                   "\" has no detector");
  }
  const TenantId id = sessions_.size();
  sessions_.push_back(std::make_unique<TenantSession>(
      config.detector, config.stream, config.name));
  tenant_shard_.push_back(id % shards_.size());
  configs_.push_back(std::move(config));
  PW_OBS_GAUGE_SET("fleet.tenants", sessions_.size());
  return id;
}

void FleetEngine::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // One dedicated worker per shard (degree P spawns P-1 workers, and
  // the +1 keeps the caller out of the drain loops). The pool is
  // engine-owned and sized explicitly — PW_THREADS must not be able to
  // shrink it to zero workers, which would run a drain loop inline in
  // Start() and never return.
  pool_ = std::make_unique<ThreadPool>(shards_.size() + 1);
  for (size_t s = 0; s < shards_.size(); ++s) {
    pool_->Submit([this, s] { DrainLoop(s); });
  }
#ifndef PW_OBS_DISABLED
  obs::EventLog::Global()
      .Emit("fleet_started")
      .Uint("shards", shards_.size())
      .Uint("tenants", sessions_.size());
#endif
}

void FleetEngine::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  // Joining the pool waits for the drain loops, which exit only once
  // their ring and control inbox are empty: Stop drains, it never drops.
  pool_.reset();
  running_.store(false, std::memory_order_release);
#ifndef PW_OBS_DISABLED
  obs::EventLog::Global()
      .Emit("fleet_stopped")
      .Uint("frames_processed", frames_processed())
      .Uint("frames_shed", frames_shed());
#endif
}

void FleetEngine::Flush() {
  if (!running_.load(std::memory_order_acquire)) return;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    while (shard->processed.load(std::memory_order_acquire) <
           shard->accepted.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

Status FleetEngine::Submit(TenantId tenant, sim::MeasurementFrame frame) {
  PW_RETURN_IF_ERROR(CheckTenant(tenant));
  const size_t shard_index = tenant_shard_[tenant];
  Shard& shard = *shards_[shard_index];
  frames_submitted_.fetch_add(1, std::memory_order_relaxed);
  PW_OBS_COUNTER_INC("fleet.frames_submitted");
  FrameTask task;
  task.session = sessions_[tenant].get();
  task.frame = std::move(frame);
  task.enqueue_us = obs::MonotonicNowUs();
  // pw-producer: Submit is the fleet's single ingest thread (threading
  // matrix in docs/FLEET.md), and tenant->shard pinning makes it the
  // only thread that ever pushes onto this shard's ring.
  if (!shard.queue.TryPush(std::move(task))) {
    frames_shed_.fetch_add(1, std::memory_order_relaxed);
    PW_OBS_COUNTER_INC("fleet.frames_shed");
    return Status::ResourceExhausted(
        "shard " + std::to_string(shard_index) +
        " frame queue is full (backpressure; frame shed)");
  }
  // accepted counts only frames that made it onto the ring, after the
  // push: the drain side must never observe accepted < processed.
  shard.accepted.fetch_add(1, std::memory_order_release);
  PW_OBS_GAUGE_MAX("fleet.queue_high_water", shard.queue.SizeApprox());
  return Status::OK();
}

void FleetEngine::DrainLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  // Instrument pointers resolved before the steady-state loop; the
  // registry owns them forever, so caching is free and keeps the hot
  // loop allocation-free.
  obs::QuantileHistogram* shard_latency = shard.latency;
  obs::QuantileHistogram* fleet_latency = obs::MetricsRegistry::Global().GetQuantile(
      "fleet.frame_us", obs::DefaultLatencyQuantileOptions());
  obs::Counter* processed_counter =
      obs::MetricsRegistry::Global().GetCounter("fleet.frames_processed");
  obs::Counter* failed_counter =
      obs::MetricsRegistry::Global().GetCounter("fleet.frames_failed");
  size_t idle_polls = 0;
  FrameTask task;
  // The dispatch loop is the fleet's steady-state hot path: one pop,
  // one session call, two histogram records, one counter tick. It must
  // not allocate — per-frame heap traffic at 1000 tenants x 30 Hz
  // would dominate the latency tail (verified by alloc_counter in
  // bench/fleet_replay.cc; the lint region keeps it that way).
  // PW_NO_ALLOC_BEGIN(fleet shard drain)
  for (;;) {
    if (shard.has_control.load(std::memory_order_acquire)) {
      RunControlHooks(shard);
    }
    // Shutdown ordering: the stop flag is read *before* the pop. Every
    // frame accepted before Stop() set the flag is pushed before the
    // flag's release store, so once this acquire load observes the
    // flag, the pop below is guaranteed to see those frames — an empty
    // pop then really means the ring is drained. Reading the flag
    // after a failed pop (the old order) left a window where a frame
    // pushed between the two reads was stranded on the ring forever.
    const bool stop_observed =
        stop_requested_.load(std::memory_order_acquire);
    if (shard.queue.TryPop(&task)) {
      idle_polls = 0;
      Result<StreamEvent> event = task.session->ProcessFrame(task.frame);
      const double latency_us = obs::MonotonicNowUs() - task.enqueue_us;
      shard_latency->Record(latency_us);
      fleet_latency->Record(latency_us);
      processed_counter->Increment();
      if (!event.ok()) failed_counter->Increment();
      shard.processed.fetch_add(1, std::memory_order_release);
      continue;
    }
    if (stop_observed &&
        !shard.has_control.load(std::memory_order_acquire)) {
      break;
    }
    // Empty poll: yield first, sleep once the queue has stayed dry.
    ++idle_polls;
    if (idle_polls < kSpinPollsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
  // PW_NO_ALLOC_END
}

void FleetEngine::RunControlHooks(Shard& shard) {
  std::vector<std::function<void()>> hooks;
  {
    MutexLock lock(shard.control_mu);
    hooks.swap(shard.control_hooks);
    shard.has_control.store(false, std::memory_order_release);
  }
  for (const std::function<void()>& hook : hooks) hook();
}

void FleetEngine::RunOnShard(size_t shard_index,
                             const std::function<void()>& fn) {
  if (!running_.load(std::memory_order_acquire)) {
    // Quiesced engine: no drain thread owns the sessions, the caller
    // may touch them directly.
    fn();
    return;
  }
  Shard& shard = *shards_[shard_index];
  // Completion latch. Ranked above control_mu: the hook runs on the
  // drain thread after RunControlHooks has released control_mu, and
  // this thread takes it only after its own control_mu scope closed.
  Mutex done_mu{lock_rank::kFleetDone};
  CondVar done_cv;
  bool done = false;
  {
    MutexLock lock(shard.control_mu);
    shard.control_hooks.push_back([&] {
      fn();
      MutexLock done_lock(done_mu);
      done = true;
      done_cv.NotifyAll();
    });
    shard.has_control.store(true, std::memory_order_release);
  }
  MutexLock lock(done_mu);
  while (!done) done_cv.Wait(done_mu);
}

Status FleetEngine::CheckTenant(TenantId tenant) const {
  if (tenant >= sessions_.size()) {
    return Status::NotFound("unknown tenant id " + std::to_string(tenant));
  }
  return Status::OK();
}

Status FleetEngine::ReloadModel(TenantId tenant,
                                std::shared_ptr<OutageDetector> model) {
  PW_RETURN_IF_ERROR(CheckTenant(tenant));
  if (model == nullptr) {
    return Status::InvalidArgument("ReloadModel with a null model");
  }
  // Safe while the shard runs: the swap is atomic, in-flight frames
  // keep the shared_ptr they loaded, and the drain thread clears the
  // batch memo when it first observes the new instance.
  sessions_[tenant]->ReloadModel(std::move(model));
  PW_OBS_COUNTER_INC("fleet.model_reloads");
  return Status::OK();
}

Status FleetEngine::ReloadModelFromFile(TenantId tenant,
                                        const std::string& path) {
  PW_RETURN_IF_ERROR(CheckTenant(tenant));
  const TenantConfig& config = configs_[tenant];
  if (config.grid == nullptr || config.network == nullptr) {
    return Status::FailedPrecondition(
        "tenant \"" + config.name +
        "\" has no grid/network configured for file reload");
  }
  // The PWDET04 load (and its fingerprint check against the tenant's
  // configuration) runs here, on the caller's thread — the shard never
  // touches the filesystem.
  PW_ASSIGN_OR_RETURN(OutageDetector loaded, OutageDetector::LoadFromFile(
                                                 path, *config.grid,
                                                 *config.network));
  return ReloadModel(tenant,
                     std::make_shared<OutageDetector>(std::move(loaded)));
}

Result<TenantSnapshot> FleetEngine::SnapshotTenant(TenantId tenant) {
  PW_RETURN_IF_ERROR(CheckTenant(tenant));
  TenantSnapshot snapshot;
  RunOnShard(tenant_shard_[tenant],
             [&] { snapshot = sessions_[tenant]->Snapshot(); });
  return snapshot;
}

Status FleetEngine::RestoreTenant(TenantId tenant,
                                  const TenantSnapshot& snapshot) {
  PW_RETURN_IF_ERROR(CheckTenant(tenant));
  Status status;
  RunOnShard(tenant_shard_[tenant],
             [&] { status = sessions_[tenant]->Restore(snapshot); });
  return status;
}

std::vector<TenantStatus> FleetEngine::TenantRows() const {
  std::vector<TenantStatus> rows;
  rows.reserve(sessions_.size());
  for (TenantId id = 0; id < sessions_.size(); ++id) {
    const TenantSession& session = *sessions_[id];
    const TenantCounters& counters = session.counters();
    TenantStatus row;
    row.id = id;
    row.name = configs_[id].name;
    row.shard = tenant_shard_[id];
    row.samples = counters.samples.load(std::memory_order_relaxed);
    row.samples_rejected =
        counters.samples_rejected.load(std::memory_order_relaxed);
    row.frames_dropped =
        counters.frames_dropped.load(std::memory_order_relaxed);
    row.frames_stale = counters.frames_stale.load(std::memory_order_relaxed);
    row.alarms_raised =
        counters.alarms_raised.load(std::memory_order_relaxed);
    row.alarms_cleared =
        counters.alarms_cleared.load(std::memory_order_relaxed);
    row.alarm_active = session.alarm_active();
    rows.push_back(std::move(row));
  }
  return rows;
}

obs::QuantileHistogram::Snapshot FleetEngine::LatencySnapshot() const {
  obs::QuantileHistogram::Snapshot merged;
  bool first = true;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    obs::QuantileHistogram::Snapshot snapshot =
        shard->latency->TakeSnapshot();
    if (first) {
      merged = std::move(snapshot);
      first = false;
    } else {
      merged.Merge(snapshot);
    }
  }
  return merged;
}

TenantSession& FleetEngine::session(TenantId tenant) {
  PW_CHECK(tenant < sessions_.size());
  return *sessions_[tenant];
}

uint64_t FleetEngine::frames_processed() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->processed.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace phasorwatch::detect
