#ifndef PHASORWATCH_DETECT_STREAM_H_
#define PHASORWATCH_DETECT_STREAM_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "detect/detector.h"
#include "sim/fault_injection.h"

namespace phasorwatch::detect {

/// Debouncing policy for the streaming monitor.
struct StreamOptions {
  /// Consecutive outage-positive samples before the alarm is raised.
  /// PMUs deliver 30-60 samples/s, so even 3 costs only ~100 ms of
  /// latency while suppressing single-sample flicker.
  size_t alarm_after = 2;
  /// Consecutive normal samples before an active alarm clears.
  size_t clear_after = 3;
  /// Sliding window of recent positive detections used for the majority
  /// vote over candidate lines.
  size_t vote_window = 8;
  /// A PMU feed drops frames, garbles payloads, and repeats stale data;
  /// a monitor that returns an error on every such sample is useless in
  /// production. With this set (the default), samples the detector
  /// rejects as malformed or data-starved become `sample_rejected`
  /// events — the debouncing state is untouched, exactly as if the
  /// sample had never arrived — and only programming errors propagate.
  /// Clear it to surface every rejection as a Status (strict mode for
  /// tests and offline replays).
  bool tolerate_bad_samples = true;
};

/// One processed sample's outcome.
struct StreamEvent {
  /// 0-based index of the sample within this monitor's stream (resets
  /// with Reset()); alarm events in the JSONL log carry the same index.
  uint64_t sample_index = 0;
  bool alarm_active = false;
  bool alarm_raised = false;   ///< transitioned to active at this sample
  bool alarm_cleared = false;  ///< transitioned to inactive at this sample
  /// The sample was dropped, stale, or rejected by the detector
  /// (StreamOptions::tolerate_bad_samples); debouncing state was not
  /// advanced and `raw`/`lines` carry no detection.
  bool sample_rejected = false;
  /// Majority-voted candidate lines over the vote window (stable F-hat);
  /// empty while no alarm is active.
  std::vector<grid::LineId> lines;
  /// The raw single-sample detection (for logging/inspection).
  DetectionResult raw;
};

/// Stateful wrapper turning the per-sample OutageDetector into an
/// operator-facing alarm stream: debounces the alarm flag and stabilizes
/// the candidate line set by majority vote across recent samples.
///
/// Thread-safety contract (single producer, many observers): Process()
/// and Reset() mutate debouncing state and must be externally
/// serialized — one ingest thread, as in a PDC feed. The cheap
/// observers alarm_active() and samples_processed() are atomic and may
/// be polled concurrently from other threads (an operator UI, a
/// metrics scraper) without locking. Everything else (StreamEvent
/// results, Reset) belongs to the producer thread.
/// tests/stream_concurrency_test.cc pins this contract down under
/// ThreadSanitizer.
class StreamingMonitor {
 public:
  /// The detector must outlive the monitor.
  StreamingMonitor(OutageDetector* detector, const StreamOptions& options);

  /// Feeds one sample; returns the debounced event.
  PW_NODISCARD Result<StreamEvent> Process(const linalg::Vector& vm,
                                           const linalg::Vector& va,
                                           const sim::MissingMask& mask);

  /// Complete-sample convenience.
  PW_NODISCARD Result<StreamEvent> Process(const linalg::Vector& vm,
                                           const linalg::Vector& va);

  /// Feeds one transport-level frame (sim/fault_injection.h), honoring
  /// its metadata before the measurements are even looked at: dropped
  /// frames and frames whose timestamp does not advance past the last
  /// accepted one are rejected (`stream.frames_dropped` /
  /// `stream.frames_stale`), everything else flows into Process().
  /// Producer-thread only.
  PW_NODISCARD Result<StreamEvent> ProcessFrame(
      const sim::MeasurementFrame& frame);

  /// Feeds a block of samples (in stream order) through
  /// OutageDetector::DetectBatch and debounces each result. Events are
  /// identical to calling Process() sample by sample; the batch
  /// amortizes the detector's per-sample fixed costs, which matters
  /// when draining a PDC buffer after a stall. Producer-thread only,
  /// like Process(). On error no sample of the batch is counted.
  PW_NODISCARD Result<std::vector<StreamEvent>> ProcessBatch(
      const std::vector<OutageDetector::BatchSample>& samples);

  /// Safe to poll from any thread while the producer runs.
  bool alarm_active() const {
    return alarm_active_.load(std::memory_order_acquire);
  }
  /// Samples ingested since construction or the last Reset(), rejected
  /// ones included (each consumes one sample index). Safe to poll from
  /// any thread while the producer runs.
  uint64_t samples_processed() const {
    return next_sample_.load(std::memory_order_acquire);
  }
  /// Drops all debouncing/voting state (e.g. after operator ack).
  /// Producer-thread only.
  void Reset();

 private:
  /// Advances the debouncing state machine with one raw detection and
  /// builds its event (the shared tail of Process and ProcessBatch).
  StreamEvent Debounce(DetectionResult raw);

  /// Builds a `sample_rejected` event for a sample the monitor refuses
  /// to feed into debouncing (consumes a sample index, leaves the
  /// debounce state alone).
  StreamEvent RejectSample(const Status& reason);

  std::vector<grid::LineId> MajorityLines() const;
  /// Names for a candidate line set, for event logs ("Bus1-Bus2").
  std::vector<std::string> LineNames(
      const std::vector<grid::LineId>& lines) const;

  OutageDetector* detector_;  // not owned
  StreamOptions options_;

  /// Atomic so observers can poll concurrently with the producer; all
  /// writes happen on the producer thread.
  std::atomic<uint64_t> next_sample_{0};
  std::atomic<bool> alarm_active_{false};
  size_t consecutive_positive_ = 0;
  size_t consecutive_negative_ = 0;
  std::deque<std::vector<grid::LineId>> recent_votes_;
  /// Timestamp of the last accepted frame (ProcessFrame staleness
  /// check). Producer-thread only, like the debounce counters.
  uint64_t last_timestamp_us_ = 0;
  bool has_timestamp_ = false;
};

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_STREAM_H_
