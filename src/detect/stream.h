#ifndef PHASORWATCH_DETECT_STREAM_H_
#define PHASORWATCH_DETECT_STREAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "detect/detector.h"
#include "detect/session.h"
#include "sim/fault_injection.h"

namespace phasorwatch::detect {

/// Stateful wrapper turning the per-sample OutageDetector into an
/// operator-facing alarm stream: debounces the alarm flag and
/// stabilizes the candidate line set by majority vote across recent
/// samples. This is the single-grid, caller-threaded entry point; the
/// implementation lives in TenantSession (detect/session.h), of which
/// this monitor owns exactly one — multi-grid deployments run many
/// sessions behind the fleet engine (detect/fleet.h) instead.
///
/// Thread-safety contract (single producer, many observers): Process()
/// and Reset() mutate debouncing state and must be externally
/// serialized — one ingest thread, as in a PDC feed. The cheap
/// observers alarm_active() and samples_processed() are atomic and may
/// be polled concurrently from other threads (an operator UI, a
/// metrics scraper) without locking. Everything else (StreamEvent
/// results, Reset) belongs to the producer thread.
/// tests/stream_concurrency_test.cc pins this contract down under
/// ThreadSanitizer.
class StreamingMonitor {
 public:
  /// The detector must outlive the monitor (the monitor's session holds
  /// a non-owning reference; null crashes the session constructor's
  /// contract check, as before).
  StreamingMonitor(OutageDetector* detector, const StreamOptions& options)
      // Aliasing shared_ptr with no control block: the monitor never
      // owned its detector and still does not.
      : session_(std::shared_ptr<OutageDetector>(
                     std::shared_ptr<OutageDetector>(), detector),
                 options) {}

  /// Feeds one sample; returns the debounced event.
  PW_NODISCARD Result<StreamEvent> Process(const linalg::Vector& vm,
                                           const linalg::Vector& va,
                                           const sim::MissingMask& mask) {
    return session_.Process(vm, va, mask);
  }

  /// Complete-sample convenience.
  PW_NODISCARD Result<StreamEvent> Process(const linalg::Vector& vm,
                                           const linalg::Vector& va) {
    return session_.Process(vm, va);
  }

  /// Feeds one transport-level frame (sim/fault_injection.h); see
  /// TenantSession::ProcessFrame. Producer-thread only.
  PW_NODISCARD Result<StreamEvent> ProcessFrame(
      const sim::MeasurementFrame& frame) {
    return session_.ProcessFrame(frame);
  }

  /// Feeds a block of samples (in stream order); see
  /// TenantSession::ProcessBatch. Producer-thread only.
  PW_NODISCARD Result<std::vector<StreamEvent>> ProcessBatch(
      const std::vector<OutageDetector::BatchSample>& samples) {
    return session_.ProcessBatch(samples);
  }

  /// Safe to poll from any thread while the producer runs.
  bool alarm_active() const { return session_.alarm_active(); }
  /// Samples ingested since construction or the last Reset(), rejected
  /// ones included (each consumes one sample index). Safe to poll from
  /// any thread while the producer runs.
  uint64_t samples_processed() const { return session_.samples_processed(); }
  /// Drops all debouncing/voting state and the batch-path memoization
  /// (e.g. after operator ack). Producer-thread only.
  void Reset() { session_.Reset(); }

  /// The underlying session, for callers migrating to the fleet API.
  TenantSession& session() { return session_; }

 private:
  TenantSession session_;
};

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_STREAM_H_
