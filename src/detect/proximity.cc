#include "detect/proximity.h"

#include <algorithm>

#include "common/check.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/workspace.h"
#include "linalg/svd.h"
#include "linalg/views.h"
#include "obs/metrics.h"

namespace phasorwatch::detect {

uint64_t GroupCacheKey(uint64_t model_key, const std::vector<size_t>& group) {
  // FNV-1a over the member indices, mixed with the model key.
  uint64_t h = 1469598103934665603ull ^ model_key;
  for (size_t idx : group) {
    h ^= static_cast<uint64_t>(idx) + 0x9E3779B97F4A7C15ull;
    h *= 1099511628211ull;
  }
  return h;
}

double ProximityEngine::EvaluateComplete(const SubspaceModel& model,
                                         const linalg::Vector& sample) {
  return model.Proximity(sample);
}

Result<std::shared_ptr<const ProximityEngine::CachedRegressor>>
ProximityEngine::BuildRegressor(const SubspaceModel& model,
                                const std::vector<size_t>& group) {
  PW_OBS_COUNTER_INC("proximity.regressor_builds");
  // Build the regressor R = (I - C_M C_M^+) C_D, with C = B^T.
  const size_t n = model.ambient_dim();
  const linalg::Matrix& b = model.constraints.basis();  // n x k
  const size_t k = b.cols();

  std::vector<bool> in_group(n, false);
  for (size_t idx : group) {
    PW_CHECK_LT(idx, n);
    in_group[idx] = true;
  }
  std::vector<size_t> hidden;
  hidden.reserve(n - group.size());
  for (size_t i = 0; i < n; ++i) {
    if (!in_group[i]) hidden.push_back(i);
  }

  // C_D: k x |D| (rows of B for D, transposed); C_M likewise.
  linalg::Matrix c_d(k, group.size());
  for (size_t c = 0; c < group.size(); ++c) {
    for (size_t r = 0; r < k; ++r) c_d(r, c) = b(group[c], r);
  }
  linalg::Matrix c_m(k, hidden.size());
  for (size_t c = 0; c < hidden.size(); ++c) {
    for (size_t r = 0; r < k; ++r) c_m(r, c) = b(hidden[c], r);
  }

  linalg::Matrix regressor;
  if (hidden.empty()) {
    regressor = c_d;
  } else {
    PW_ASSIGN_OR_RETURN(linalg::Matrix c_m_pinv, linalg::PseudoInverse(c_m));
    regressor = c_d - (c_m * (c_m_pinv * c_d));
  }
  return std::make_shared<const CachedRegressor>(
      CachedRegressor{std::move(regressor), group});
}

PW_NO_ALLOC Result<double> ProximityEngine::Evaluate(
    const SubspaceModel& model, uint64_t model_key,
    const linalg::Vector& sample, const std::vector<size_t>& group,
    BatchCache* batch_cache) {
  const size_t n = model.ambient_dim();
  PW_OBS_COUNTER_INC("proximity.evaluations");
  if (sample.size() != n) {
    return Status::InvalidArgument("sample dimension mismatch");
  }
  if (group.empty()) {
    return Status::DataMissing("empty detection group");
  }
  if (group.size() == n) {
    // Complete data: plain projection, no Eq. 9 regressor needed.
    PW_OBS_COUNTER_INC("proximity.complete_evaluations");
    return EvaluateComplete(model, sample);
  }

  uint64_t key = GroupCacheKey(model_key, group);
  std::shared_ptr<const CachedRegressor> cached;
  bool from_batch_memo = false;
  if (batch_cache != nullptr) {
    auto it = batch_cache->memo_.find(key);
    if (it != batch_cache->memo_.end() && it->second->group == group) {
      cached = it->second;
      from_batch_memo = true;
      // Count as a cache hit: the regressor was resolved without a
      // build, same as the shared-cache path, so the observability
      // totals match the per-sample path exactly.
      PW_OBS_COUNTER_INC("proximity.cache_hits");
    }
  }
  if (cached == nullptr) {
    ReaderLock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second->group == group) {
      cached = it->second;
    }
  }
  if (cached == nullptr) {
    // Double-checked upgrade, audited: the shared lock above is fully
    // released before the cold build (std::shared_mutex is not
    // upgradable, and holding readers through a multi-millisecond SVD
    // would stall every other evaluator). The build therefore races
    // with identical builds on other threads by design; the re-check
    // under the writer lock below resolves the race.
    //
    // Cache miss: the cold build path runs once per (model, group)
    // pair, outside this function's no-alloc contract.
    PW_ASSIGN_OR_RETURN(cached, BuildRegressor(model, group));
    size_t cache_size;
    {
      WriterLock lock(mu_);
      // Re-check: another thread may have built the same key between
      // the reader unlock and here. Both regressors are bit-identical
      // (same deterministic inputs), so either copy serves — keep the
      // incumbent and let this thread's copy die. A differing stored
      // group means a genuine hash collision — the newcomer wins, as
      // before.
      auto [it, inserted] = cache_.try_emplace(key, cached);
      if (!inserted && it->second->group != group) it->second = cached;
      cache_size = cache_.size();
    }
    PW_OBS_GAUGE_SET("proximity.cache_size", cache_size);
  } else if (!from_batch_memo) {
    PW_OBS_COUNTER_INC("proximity.cache_hits");
  }
  if (batch_cache != nullptr && !from_batch_memo) {
    batch_cache->memo_[key] = cached;
  }

  // Residual: || R (x_D - mu_D) ||^2 — one Eq. 9 regressor application
  // (the missing-data path proper). z comes from the per-thread arena
  // and the product folds into the norm accumulation row by row, so a
  // warmed evaluation allocates nothing. The Frame rewinds the arena on
  // exit: training loops call Evaluate thousands of times with no outer
  // reset, and without it the arena would grow with iteration count.
  PW_OBS_COUNTER_INC("proximity.regressor_applications");
  Workspace& ws = Workspace::PerThread();
  Workspace::Frame scratch_frame(ws);
  linalg::VectorView z(ws.Alloc(group.size()), group.size());
  for (size_t c = 0; c < group.size(); ++c) {
    z[c] = sample[group[c]] - model.mean[group[c]];
  }
  linalg::ConstMatrixView reg(cached->r);
  double sum = 0.0;
  // Row-wise dot-then-square matches Matrix::operator*(Vector) followed
  // by the squared-norm loop operation for operation: bit-identical.
  // The view's row() keeps the stride arithmetic inside the linalg
  // layer (pw-lint forbids raw double* walks over matrix storage here).
  for (size_t i = 0; i < reg.rows(); ++i) {
    double dot = 0.0;
    const double* row = reg.row(i);
    for (size_t j = 0; j < reg.cols(); ++j) dot += row[j] * z[j];
    sum += dot * dot;
  }
  return sum;
}

}  // namespace phasorwatch::detect
