#include "detect/stream.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace phasorwatch::detect {
namespace {

// Errors the monitor may absorb as rejected samples under
// tolerate_bad_samples: malformed measurements and data starvation are
// facts of life on a PMU feed. Everything else (internal errors,
// numerical failures) still propagates.
bool IsBadSampleError(StatusCode code) {
  return code == StatusCode::kInvalidArgument ||
         code == StatusCode::kDataMissing;
}

}  // namespace

StreamingMonitor::StreamingMonitor(OutageDetector* detector,
                                   const StreamOptions& options)
    : detector_(detector), options_(options) {
  PW_CHECK(detector != nullptr);
  PW_CHECK_GT(options_.alarm_after, 0u);
  PW_CHECK_GT(options_.clear_after, 0u);
  PW_CHECK_GT(options_.vote_window, 0u);
}

Result<StreamEvent> StreamingMonitor::Process(const linalg::Vector& vm,
                                              const linalg::Vector& va,
                                              const sim::MissingMask& mask) {
  // End-to-end per-sample latency (detector + debounce), tail-accurate
  // via the like-named quantile histogram.
  PW_TRACE_SCOPE("stream.sample_us");
  Result<DetectionResult> raw = detector_->Detect(vm, va, mask);
  if (!raw.ok()) {
    if (!options_.tolerate_bad_samples ||
        !IsBadSampleError(raw.status().code())) {
      return raw.status();
    }
    return RejectSample(raw.status());
  }
  return Debounce(std::move(raw).value());
}

Result<StreamEvent> StreamingMonitor::ProcessFrame(
    const sim::MeasurementFrame& frame) {
  // End-to-end frame latency, transport screening included. The
  // `.high_water` gauge keeps the worst single frame ever seen — the
  // number an operator compares against the PMU reporting interval.
  PW_TRACE_SCOPE_HIGH_WATER("stream.frame_us");
  if (frame.dropped) {
    PW_OBS_COUNTER_INC("stream.frames_dropped");
    Status reason = Status::DataMissing("frame dropped in transport");
    if (!options_.tolerate_bad_samples) return reason;
    return RejectSample(reason);
  }
  if (has_timestamp_ && frame.timestamp_us <= last_timestamp_us_) {
    PW_OBS_COUNTER_INC("stream.frames_stale");
    Status reason = Status::InvalidArgument(
        "frame timestamp did not advance (stale or replayed data)");
    if (!options_.tolerate_bad_samples) return reason;
    return RejectSample(reason);
  }
  last_timestamp_us_ = frame.timestamp_us;
  has_timestamp_ = true;
  return Process(frame.vm, frame.va, frame.mask);
}

Result<std::vector<StreamEvent>> StreamingMonitor::ProcessBatch(
    const std::vector<OutageDetector::BatchSample>& samples) {
  PW_TRACE_SCOPE("stream.batch_us");
  for (const OutageDetector::BatchSample& sample : samples) {
    if (sample.vm == nullptr || sample.va == nullptr ||
        sample.mask == nullptr) {
      return Status::InvalidArgument("ProcessBatch sample has null fields");
    }
  }
#ifndef PW_OBS_DISABLED
  const double batch_start_us = obs::MonotonicNowUs();
#endif
  Result<std::vector<DetectionResult>> raws = detector_->DetectBatch(samples);
  if (raws.ok()) {
    std::vector<StreamEvent> events;
    events.reserve(raws.value().size());
    for (DetectionResult& raw : raws.value()) {
      events.push_back(Debounce(std::move(raw)));
    }
#ifndef PW_OBS_DISABLED
    // Amortized per-frame latency: the batch path must feed the same
    // `stream.frame_us` series ProcessFrame feeds, or a monitor that
    // drains PDC buffers in blocks would report an empty tail.
    if (!events.empty()) {
      const double per_sample_us =
          (obs::MonotonicNowUs() - batch_start_us) /
          static_cast<double>(events.size());
      for (size_t i = 0; i < events.size(); ++i) {
        PW_OBS_QUANTILE_RECORD("stream.frame_us", per_sample_us);
      }
      PW_OBS_GAUGE_MAX("stream.frame_us.high_water", per_sample_us);
    }
#endif
    return events;
  }
  if (!options_.tolerate_bad_samples ||
      !IsBadSampleError(raws.status().code())) {
    return raws.status();
  }
  // A bad sample aborts the whole DetectBatch call, so replay the block
  // sample by sample: only the offending samples become rejected
  // events. Detector-level counters count the aborted batch prefix a
  // second time here — operational metrics, not exact tallies, under
  // fault conditions.
  std::vector<StreamEvent> events;
  events.reserve(samples.size());
  for (const OutageDetector::BatchSample& sample : samples) {
    PW_ASSIGN_OR_RETURN(StreamEvent event,
                        Process(*sample.vm, *sample.va, *sample.mask));
    events.push_back(std::move(event));
  }
  return events;
}

StreamEvent StreamingMonitor::RejectSample(const Status& reason) {
  StreamEvent event;
  event.sample_index = next_sample_++;
  event.sample_rejected = true;
  event.alarm_active = alarm_active_.load(std::memory_order_relaxed);
  PW_OBS_COUNTER_INC("stream.samples_rejected");
  static_cast<void>(reason);
#ifndef PW_OBS_DISABLED
  obs::EventLog::Global()
      .Emit("sample_rejected")
      .Uint("sample", event.sample_index)
      .Str("reason", reason.ToString());
#endif
  return event;
}

StreamEvent StreamingMonitor::Debounce(DetectionResult raw) {
  // The alarm stage proper: debounce counters, majority vote, event
  // emission — everything after the detector returns.
  PW_TRACE_SCOPE("stream.stage.alarm_us");
  StreamEvent event;
  event.sample_index = next_sample_++;
  PW_OBS_COUNTER_INC("stream.samples");
  event.raw = std::move(raw);

  if (event.raw.outage_detected) {
    ++consecutive_positive_;
    consecutive_negative_ = 0;
    recent_votes_.push_back(event.raw.lines);
    while (recent_votes_.size() > options_.vote_window) {
      recent_votes_.pop_front();
    }
  } else {
    ++consecutive_negative_;
    consecutive_positive_ = 0;
  }

  if (!alarm_active_ && consecutive_positive_ >= options_.alarm_after) {
    alarm_active_ = true;
    event.alarm_raised = true;
  } else if (alarm_active_ && consecutive_negative_ >= options_.clear_after) {
    alarm_active_ = false;
    event.alarm_cleared = true;
    recent_votes_.clear();
  }

  event.alarm_active = alarm_active_;
  if (alarm_active_) {
    event.lines = MajorityLines();
  }

#ifndef PW_OBS_DISABLED
  PW_OBS_GAUGE_SET("stream.alarm_active", alarm_active_ ? 1 : 0);
  if (event.alarm_raised) {
    PW_OBS_COUNTER_INC("stream.alarms_raised");
    obs::EventLog::Global()
        .Emit("alarm_raised")
        .Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score)
        .StrList("candidate_lines", LineNames(event.lines));
  } else if (event.alarm_cleared) {
    PW_OBS_COUNTER_INC("stream.alarms_cleared");
    obs::EventLog::Global()
        .Emit("alarm_cleared")
        .Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score);
  } else if (alarm_active_) {
    // Steady-state alarm tick: record the (possibly re-voted) F-hat so
    // the JSONL log shows the candidate set evolving sample by sample.
    obs::EventLog::Global()
        .Emit("alarm_vote")
        .Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score)
        .StrList("candidate_lines", LineNames(event.lines));
  }
  // Per-sample heartbeat for debugging; rate-limited so a 30-60 Hz PMU
  // stream cannot flood stderr.
  PW_LOG_EVERY_N(Debug, 30) << "stream: sample " << event.sample_index
                            << " score=" << event.raw.decision_score
                            << (alarm_active_ ? " [ALARM]" : "");
#endif  // PW_OBS_DISABLED
  return event;
}

Result<StreamEvent> StreamingMonitor::Process(const linalg::Vector& vm,
                                              const linalg::Vector& va) {
  return Process(vm, va, sim::MissingMask::None(vm.size()));
}

void StreamingMonitor::Reset() {
  alarm_active_ = false;
  consecutive_positive_ = 0;
  consecutive_negative_ = 0;
  next_sample_ = 0;
  recent_votes_.clear();
  last_timestamp_us_ = 0;
  has_timestamp_ = false;
#ifndef PW_OBS_DISABLED
  obs::EventLog::Global().Emit("monitor_reset");
  PW_OBS_GAUGE_SET("stream.alarm_active", 0);
#endif
}

std::vector<grid::LineId> StreamingMonitor::MajorityLines() const {
  // Count appearances of each candidate line over the window; keep the
  // lines present in more than half of the votes. Falls back to the
  // most recent raw candidate set when nothing clears the bar (early in
  // an event the window is short).
  std::map<grid::LineId, size_t> counts;
  for (const auto& vote : recent_votes_) {
    for (const grid::LineId& line : vote) ++counts[line];
  }
  std::vector<grid::LineId> majority;
  size_t needed = recent_votes_.size() / 2 + 1;
  for (const auto& [line, count] : counts) {
    if (count >= needed) majority.push_back(line);
  }
  if (majority.empty() && !recent_votes_.empty()) {
    majority = recent_votes_.back();
  }
  return majority;
}

std::vector<std::string> StreamingMonitor::LineNames(
    const std::vector<grid::LineId>& lines) const {
  std::vector<std::string> names;
  names.reserve(lines.size());
  for (const grid::LineId& line : lines) {
    names.push_back(detector_->grid().LineName(line));
  }
  return names;
}

}  // namespace phasorwatch::detect
