#include "detect/stream.h"

#include <algorithm>

#include "common/check.h"

namespace phasorwatch::detect {

StreamingMonitor::StreamingMonitor(OutageDetector* detector,
                                   const StreamOptions& options)
    : detector_(detector), options_(options) {
  PW_CHECK(detector != nullptr);
  PW_CHECK_GT(options_.alarm_after, 0u);
  PW_CHECK_GT(options_.clear_after, 0u);
  PW_CHECK_GT(options_.vote_window, 0u);
}

Result<StreamEvent> StreamingMonitor::Process(const linalg::Vector& vm,
                                              const linalg::Vector& va,
                                              const sim::MissingMask& mask) {
  StreamEvent event;
  PW_ASSIGN_OR_RETURN(event.raw, detector_->Detect(vm, va, mask));

  if (event.raw.outage_detected) {
    ++consecutive_positive_;
    consecutive_negative_ = 0;
    recent_votes_.push_back(event.raw.lines);
    while (recent_votes_.size() > options_.vote_window) {
      recent_votes_.pop_front();
    }
  } else {
    ++consecutive_negative_;
    consecutive_positive_ = 0;
  }

  if (!alarm_active_ && consecutive_positive_ >= options_.alarm_after) {
    alarm_active_ = true;
    event.alarm_raised = true;
  } else if (alarm_active_ && consecutive_negative_ >= options_.clear_after) {
    alarm_active_ = false;
    event.alarm_cleared = true;
    recent_votes_.clear();
  }

  event.alarm_active = alarm_active_;
  if (alarm_active_) {
    event.lines = MajorityLines();
  }
  return event;
}

Result<StreamEvent> StreamingMonitor::Process(const linalg::Vector& vm,
                                              const linalg::Vector& va) {
  return Process(vm, va, sim::MissingMask::None(vm.size()));
}

void StreamingMonitor::Reset() {
  alarm_active_ = false;
  consecutive_positive_ = 0;
  consecutive_negative_ = 0;
  recent_votes_.clear();
}

std::vector<grid::LineId> StreamingMonitor::MajorityLines() const {
  // Count appearances of each candidate line over the window; keep the
  // lines present in more than half of the votes. Falls back to the
  // most recent raw candidate set when nothing clears the bar (early in
  // an event the window is short).
  std::map<grid::LineId, size_t> counts;
  for (const auto& vote : recent_votes_) {
    for (const grid::LineId& line : vote) ++counts[line];
  }
  std::vector<grid::LineId> majority;
  size_t needed = recent_votes_.size() / 2 + 1;
  for (const auto& [line, count] : counts) {
    if (count >= needed) majority.push_back(line);
  }
  if (majority.empty() && !recent_votes_.empty()) {
    majority = recent_votes_.back();
  }
  return majority;
}

}  // namespace phasorwatch::detect
