#include "detect/stream.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace phasorwatch::detect {

StreamingMonitor::StreamingMonitor(OutageDetector* detector,
                                   const StreamOptions& options)
    : detector_(detector), options_(options) {
  PW_CHECK(detector != nullptr);
  PW_CHECK_GT(options_.alarm_after, 0u);
  PW_CHECK_GT(options_.clear_after, 0u);
  PW_CHECK_GT(options_.vote_window, 0u);
}

Result<StreamEvent> StreamingMonitor::Process(const linalg::Vector& vm,
                                              const linalg::Vector& va,
                                              const sim::MissingMask& mask) {
  PW_ASSIGN_OR_RETURN(DetectionResult raw, detector_->Detect(vm, va, mask));
  return Debounce(std::move(raw));
}

Result<std::vector<StreamEvent>> StreamingMonitor::ProcessBatch(
    const std::vector<OutageDetector::BatchSample>& samples) {
  PW_ASSIGN_OR_RETURN(std::vector<DetectionResult> raws,
                      detector_->DetectBatch(samples));
  std::vector<StreamEvent> events;
  events.reserve(raws.size());
  for (DetectionResult& raw : raws) {
    events.push_back(Debounce(std::move(raw)));
  }
  return events;
}

StreamEvent StreamingMonitor::Debounce(DetectionResult raw) {
  StreamEvent event;
  event.sample_index = next_sample_++;
  PW_OBS_COUNTER_INC("stream.samples");
  event.raw = std::move(raw);

  if (event.raw.outage_detected) {
    ++consecutive_positive_;
    consecutive_negative_ = 0;
    recent_votes_.push_back(event.raw.lines);
    while (recent_votes_.size() > options_.vote_window) {
      recent_votes_.pop_front();
    }
  } else {
    ++consecutive_negative_;
    consecutive_positive_ = 0;
  }

  if (!alarm_active_ && consecutive_positive_ >= options_.alarm_after) {
    alarm_active_ = true;
    event.alarm_raised = true;
  } else if (alarm_active_ && consecutive_negative_ >= options_.clear_after) {
    alarm_active_ = false;
    event.alarm_cleared = true;
    recent_votes_.clear();
  }

  event.alarm_active = alarm_active_;
  if (alarm_active_) {
    event.lines = MajorityLines();
  }

#ifndef PW_OBS_DISABLED
  PW_OBS_GAUGE_SET("stream.alarm_active", alarm_active_ ? 1 : 0);
  if (event.alarm_raised) {
    PW_OBS_COUNTER_INC("stream.alarms_raised");
    obs::EventLog::Global()
        .Emit("alarm_raised")
        .Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score)
        .StrList("candidate_lines", LineNames(event.lines));
  } else if (event.alarm_cleared) {
    PW_OBS_COUNTER_INC("stream.alarms_cleared");
    obs::EventLog::Global()
        .Emit("alarm_cleared")
        .Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score);
  } else if (alarm_active_) {
    // Steady-state alarm tick: record the (possibly re-voted) F-hat so
    // the JSONL log shows the candidate set evolving sample by sample.
    obs::EventLog::Global()
        .Emit("alarm_vote")
        .Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score)
        .StrList("candidate_lines", LineNames(event.lines));
  }
  // Per-sample heartbeat for debugging; rate-limited so a 30-60 Hz PMU
  // stream cannot flood stderr.
  PW_LOG_EVERY_N(Debug, 30) << "stream: sample " << event.sample_index
                            << " score=" << event.raw.decision_score
                            << (alarm_active_ ? " [ALARM]" : "");
#endif  // PW_OBS_DISABLED
  return event;
}

Result<StreamEvent> StreamingMonitor::Process(const linalg::Vector& vm,
                                              const linalg::Vector& va) {
  return Process(vm, va, sim::MissingMask::None(vm.size()));
}

void StreamingMonitor::Reset() {
  alarm_active_ = false;
  consecutive_positive_ = 0;
  consecutive_negative_ = 0;
  next_sample_ = 0;
  recent_votes_.clear();
#ifndef PW_OBS_DISABLED
  obs::EventLog::Global().Emit("monitor_reset");
  PW_OBS_GAUGE_SET("stream.alarm_active", 0);
#endif
}

std::vector<grid::LineId> StreamingMonitor::MajorityLines() const {
  // Count appearances of each candidate line over the window; keep the
  // lines present in more than half of the votes. Falls back to the
  // most recent raw candidate set when nothing clears the bar (early in
  // an event the window is short).
  std::map<grid::LineId, size_t> counts;
  for (const auto& vote : recent_votes_) {
    for (const grid::LineId& line : vote) ++counts[line];
  }
  std::vector<grid::LineId> majority;
  size_t needed = recent_votes_.size() / 2 + 1;
  for (const auto& [line, count] : counts) {
    if (count >= needed) majority.push_back(line);
  }
  if (majority.empty() && !recent_votes_.empty()) {
    majority = recent_votes_.back();
  }
  return majority;
}

std::vector<std::string> StreamingMonitor::LineNames(
    const std::vector<grid::LineId>& lines) const {
  std::vector<std::string> names;
  names.reserve(lines.size());
  for (const grid::LineId& line : lines) {
    names.push_back(detector_->grid().LineName(line));
  }
  return names;
}

}  // namespace phasorwatch::detect
