// Model persistence for the trained outage detector. The file carries
// every learned artifact (subspace models, ellipses, capabilities,
// groups, gates, baselines) plus a fingerprint of the grid and PMU
// network it was trained on; it does NOT carry the grid itself.

#include <cmath>
#include <fstream>

#include "common/serialize.h"
#include "common/status.h"
#include "detect/detector.h"

namespace phasorwatch::detect {
namespace {

// Bumped whenever the layout changes (PWDET03 added the bad-data
// screening options; PWDET04 the multi-line identification options and
// calibrated per-case peel thresholds); older files are rejected as
// unreadable rather than misparsed.
constexpr uint64_t kMagic = 0x5057444554303400ull;  // "PWDET04\0"

using linalg::Matrix;
using linalg::Subspace;
using linalg::Vector;

void WriteVector(BinaryWriter& w, const Vector& v) {
  w.WriteDoubleVector(v.values());
}

Result<Vector> ReadVector(BinaryReader& r) {
  PW_ASSIGN_OR_RETURN(std::vector<double> values, r.ReadDoubleVector());
  return Vector(std::move(values));
}

void WriteMatrix(BinaryWriter& w, const Matrix& m) {
  w.WriteU64(m.rows());
  w.WriteU64(m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) w.WriteDouble(m(i, j));
  }
}

Result<Matrix> ReadMatrix(BinaryReader& r) {
  PW_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
  PW_ASSIGN_OR_RETURN(uint64_t cols, r.ReadU64());
  if (rows > (1u << 20) || cols > (1u << 20) || rows * cols > (1u << 28)) {
    return Status::InvalidArgument("matrix dimensions exceed limits");
  }
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      PW_ASSIGN_OR_RETURN(m(i, j), r.ReadDouble());
    }
  }
  return m;
}

void WriteModel(BinaryWriter& w, const SubspaceModel& model) {
  WriteVector(w, model.mean);
  WriteMatrix(w, model.constraints.basis());
  WriteVector(w, model.singular_values);
  WriteMatrix(w, model.full_basis);
}

Result<SubspaceModel> ReadModel(BinaryReader& r) {
  SubspaceModel model;
  PW_ASSIGN_OR_RETURN(model.mean, ReadVector(r));
  PW_ASSIGN_OR_RETURN(Matrix basis, ReadMatrix(r));
  model.constraints = Subspace::FromOrthonormal(std::move(basis));
  PW_ASSIGN_OR_RETURN(model.singular_values, ReadVector(r));
  PW_ASSIGN_OR_RETURN(model.full_basis, ReadMatrix(r));
  return model;
}

// A fingerprint of the training configuration: detects loading a model
// against the wrong grid or PMU clustering before anything misbehaves.
uint64_t Fingerprint(const grid::Grid& grid, const sim::PmuNetwork& network) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull;
    h *= 1099511628211ull;
  };
  mix(grid.num_buses());
  mix(grid.num_lines());
  for (const grid::LineId& line : grid.lines()) {
    mix(line.i);
    mix(line.j);
  }
  mix(network.num_clusters());
  for (size_t i = 0; i < network.num_nodes(); ++i) {
    mix(network.ClusterOf(i));
  }
  return h;
}

}  // namespace

Status OutageDetector::Save(std::ostream& out) const {
  if (grid_ == nullptr) {
    return Status::FailedPrecondition("cannot save an untrained detector");
  }
  BinaryWriter w(out);
  w.WriteU64(kMagic);
  w.WriteU64(Fingerprint(*grid_, *network_));

  // Options that affect inference.
  w.WriteU64(static_cast<uint64_t>(options_.subspace.channel));
  w.WriteU64(static_cast<uint64_t>(options_.localization));
  w.WriteBool(options_.use_scaling);
  w.WriteDouble(options_.gap_factor);
  w.WriteU64(options_.max_affected_nodes);
  w.WriteDouble(options_.line_window);
  w.WriteU64(options_.groups.max_group_size);
  w.WriteBool(options_.screen_bad_data);
  w.WriteDouble(options_.screen_threshold);
  w.WriteU64(options_.max_outage_lines);
  w.WriteDouble(options_.peel_null_quantile);
  w.WriteDouble(options_.peel_margin);

  // Cases.
  w.WriteU64(case_lines_.size());
  for (const grid::LineId& line : case_lines_) {
    w.WriteU64(line.i);
    w.WriteU64(line.j);
  }

  // Models.
  WriteModel(w, normal_model_);
  WriteModel(w, normal_class_model_);
  w.WriteU64(line_models_.size());
  for (const SubspaceModel& m : line_models_) WriteModel(w, m);
  w.WriteU64(line_class_models_.size());
  for (const SubspaceModel& m : line_class_models_) WriteModel(w, m);
  w.WriteU64(node_models_.size());
  for (const NodeSubspaces& node : node_models_) {
    WriteModel(w, node.union_model);
    WriteModel(w, node.intersection_model);
  }

  // Ellipses.
  w.WriteU64(ellipses_.size());
  for (const EllipseModel& e : ellipses_) {
    w.WriteDouble(e.center().vm);
    w.WriteDouble(e.center().va);
    w.WriteDouble(e.a11());
    w.WriteDouble(e.a12());
    w.WriteDouble(e.a22());
  }

  // Capabilities.
  w.WriteU64(capabilities_.PerCaseRows().size());
  for (const auto& row : capabilities_.PerCaseRows()) {
    w.WriteDoubleVector(row);
  }
  WriteMatrix(w, capabilities_.NodeLevel());

  // Groups, gates, baselines.
  w.WriteU64(groups_.size());
  for (const ClusterDetectionGroup& g : groups_) {
    w.WriteSizeVector(g.in_cluster);
    w.WriteSizeVector(g.out_of_cluster);
  }
  w.WriteU64(gates_.size());
  for (const GateThresholds& g : gates_) {
    w.WriteDouble(g.in_cluster);
    w.WriteDouble(g.out_of_cluster);
  }
  w.WriteDouble(ratio_gate_);
  w.WriteDoubleVector(peel_tau_);
  WriteVector(w, node_baseline_in_);
  WriteVector(w, node_baseline_out_);

  if (!w.ok()) {
    return Status::Internal("stream write failed while saving detector");
  }
  return Status::OK();
}

Status OutageDetector::SaveToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  return Save(file);
}

Result<OutageDetector> OutageDetector::Load(std::istream& in,
                                            const grid::Grid& grid,
                                            const sim::PmuNetwork& network) {
  BinaryReader r(in);
  PW_ASSIGN_OR_RETURN(uint64_t magic, r.ReadU64());
  if (magic != kMagic) {
    return Status::InvalidArgument("not a phasorwatch detector model file");
  }
  PW_ASSIGN_OR_RETURN(uint64_t fingerprint, r.ReadU64());
  if (fingerprint != Fingerprint(grid, network)) {
    return Status::FailedPrecondition(
        "model was trained on a different grid or PMU clustering");
  }

  OutageDetector det;
  det.grid_ = &grid;
  det.network_ = &network;

  PW_ASSIGN_OR_RETURN(uint64_t channel, r.ReadU64());
  if (channel > static_cast<uint64_t>(PhasorChannel::kBoth)) {
    return Status::InvalidArgument("corrupt channel value");
  }
  det.options_.subspace.channel = static_cast<PhasorChannel>(channel);
  PW_ASSIGN_OR_RETURN(uint64_t localization, r.ReadU64());
  if (localization > static_cast<uint64_t>(LocalizationMode::kProximityRule)) {
    return Status::InvalidArgument("corrupt localization value");
  }
  det.options_.localization = static_cast<LocalizationMode>(localization);
  PW_ASSIGN_OR_RETURN(det.options_.use_scaling, r.ReadBool());
  PW_ASSIGN_OR_RETURN(det.options_.gap_factor, r.ReadDouble());
  PW_ASSIGN_OR_RETURN(uint64_t max_affected, r.ReadU64());
  det.options_.max_affected_nodes = static_cast<size_t>(max_affected);
  PW_ASSIGN_OR_RETURN(det.options_.line_window, r.ReadDouble());
  PW_ASSIGN_OR_RETURN(uint64_t max_group, r.ReadU64());
  det.options_.groups.max_group_size = static_cast<size_t>(max_group);
  PW_ASSIGN_OR_RETURN(det.options_.screen_bad_data, r.ReadBool());
  PW_ASSIGN_OR_RETURN(det.options_.screen_threshold, r.ReadDouble());
  if (!std::isfinite(det.options_.screen_threshold) ||
      det.options_.screen_threshold <= 0.0) {
    return Status::InvalidArgument("corrupt screen threshold");
  }
  PW_ASSIGN_OR_RETURN(uint64_t max_outage_lines, r.ReadU64());
  if (max_outage_lines == 0 || max_outage_lines > grid.num_lines()) {
    return Status::InvalidArgument("corrupt max outage lines");
  }
  det.options_.max_outage_lines = static_cast<size_t>(max_outage_lines);
  PW_ASSIGN_OR_RETURN(det.options_.peel_null_quantile, r.ReadDouble());
  PW_ASSIGN_OR_RETURN(det.options_.peel_margin, r.ReadDouble());
  if (!std::isfinite(det.options_.peel_null_quantile) ||
      det.options_.peel_null_quantile <= 0.0 ||
      det.options_.peel_null_quantile > 1.0 ||
      !std::isfinite(det.options_.peel_margin)) {
    return Status::InvalidArgument("corrupt multi-line thresholds");
  }

  PW_ASSIGN_OR_RETURN(uint64_t num_cases, r.ReadU64());
  if (num_cases > grid.num_lines()) {
    return Status::InvalidArgument("more cases than grid lines");
  }
  det.case_lines_.reserve(num_cases);
  for (uint64_t c = 0; c < num_cases; ++c) {
    PW_ASSIGN_OR_RETURN(uint64_t i, r.ReadU64());
    PW_ASSIGN_OR_RETURN(uint64_t j, r.ReadU64());
    if (i >= grid.num_buses() || j >= grid.num_buses()) {
      return Status::InvalidArgument("case line references unknown bus");
    }
    det.case_lines_.push_back(grid::LineId(i, j));
  }

  PW_ASSIGN_OR_RETURN(det.normal_model_, ReadModel(r));
  PW_ASSIGN_OR_RETURN(det.normal_class_model_, ReadModel(r));
  PW_ASSIGN_OR_RETURN(uint64_t num_line_models, r.ReadU64());
  if (num_line_models != num_cases) {
    return Status::InvalidArgument("line model count mismatch");
  }
  det.line_models_.reserve(num_line_models);
  for (uint64_t c = 0; c < num_line_models; ++c) {
    PW_ASSIGN_OR_RETURN(SubspaceModel m, ReadModel(r));
    det.line_models_.push_back(std::move(m));
  }
  PW_ASSIGN_OR_RETURN(uint64_t num_class_models, r.ReadU64());
  if (num_class_models != num_cases) {
    return Status::InvalidArgument("class model count mismatch");
  }
  det.line_class_models_.reserve(num_class_models);
  for (uint64_t c = 0; c < num_class_models; ++c) {
    PW_ASSIGN_OR_RETURN(SubspaceModel m, ReadModel(r));
    det.line_class_models_.push_back(std::move(m));
  }
  PW_ASSIGN_OR_RETURN(uint64_t num_nodes, r.ReadU64());
  if (num_nodes != grid.num_buses()) {
    return Status::InvalidArgument("node model count mismatch");
  }
  det.node_models_.resize(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    PW_ASSIGN_OR_RETURN(det.node_models_[i].union_model, ReadModel(r));
    PW_ASSIGN_OR_RETURN(det.node_models_[i].intersection_model, ReadModel(r));
  }

  PW_ASSIGN_OR_RETURN(uint64_t num_ellipses, r.ReadU64());
  if (num_ellipses != grid.num_buses()) {
    return Status::InvalidArgument("ellipse count mismatch");
  }
  det.ellipses_.reserve(num_ellipses);
  for (uint64_t i = 0; i < num_ellipses; ++i) {
    PhasorPoint center;
    PW_ASSIGN_OR_RETURN(center.vm, r.ReadDouble());
    PW_ASSIGN_OR_RETURN(center.va, r.ReadDouble());
    PW_ASSIGN_OR_RETURN(double a11, r.ReadDouble());
    PW_ASSIGN_OR_RETURN(double a12, r.ReadDouble());
    PW_ASSIGN_OR_RETURN(double a22, r.ReadDouble());
    det.ellipses_.push_back(
        EllipseModel::FromParameters(center, a11, a12, a22));
  }

  PW_ASSIGN_OR_RETURN(uint64_t num_capability_rows, r.ReadU64());
  if (num_capability_rows != num_cases) {
    return Status::InvalidArgument("capability row count mismatch");
  }
  std::vector<std::vector<double>> per_case(num_capability_rows);
  for (uint64_t c = 0; c < num_capability_rows; ++c) {
    PW_ASSIGN_OR_RETURN(per_case[c], r.ReadDoubleVector());
  }
  PW_ASSIGN_OR_RETURN(Matrix node_level, ReadMatrix(r));
  det.capabilities_ =
      CapabilityTable::FromData(std::move(per_case), std::move(node_level));

  PW_ASSIGN_OR_RETURN(uint64_t num_groups, r.ReadU64());
  if (num_groups != network.num_clusters()) {
    return Status::InvalidArgument("group count mismatch");
  }
  det.groups_.resize(num_groups);
  for (uint64_t c = 0; c < num_groups; ++c) {
    PW_ASSIGN_OR_RETURN(det.groups_[c].in_cluster, r.ReadSizeVector());
    PW_ASSIGN_OR_RETURN(det.groups_[c].out_of_cluster, r.ReadSizeVector());
    // Group members index into per-node tables at detection time, so a
    // corrupt index must be caught here, not by a crash in Detect.
    for (const auto* members :
         {&det.groups_[c].in_cluster, &det.groups_[c].out_of_cluster}) {
      for (size_t m : *members) {
        if (m >= grid.num_buses()) {
          return Status::InvalidArgument("group member references unknown bus");
        }
      }
    }
  }
  PW_ASSIGN_OR_RETURN(uint64_t num_gates, r.ReadU64());
  if (num_gates != network.num_clusters()) {
    return Status::InvalidArgument("gate count mismatch");
  }
  det.gates_.resize(num_gates);
  for (uint64_t c = 0; c < num_gates; ++c) {
    PW_ASSIGN_OR_RETURN(det.gates_[c].in_cluster, r.ReadDouble());
    PW_ASSIGN_OR_RETURN(det.gates_[c].out_of_cluster, r.ReadDouble());
  }
  PW_ASSIGN_OR_RETURN(det.ratio_gate_, r.ReadDouble());
  PW_ASSIGN_OR_RETURN(det.peel_tau_, r.ReadDoubleVector());
  const bool multi = det.options_.max_outage_lines >= 2;
  if (det.peel_tau_.size() != (multi ? num_cases * num_cases : 0)) {
    return Status::InvalidArgument("peel calibration size mismatch");
  }
  for (double tau : det.peel_tau_) {
    if (std::isnan(tau)) {
      return Status::InvalidArgument("corrupt peel threshold");
    }
  }
  PW_ASSIGN_OR_RETURN(det.node_baseline_in_, ReadVector(r));
  PW_ASSIGN_OR_RETURN(det.node_baseline_out_, ReadVector(r));
  if (det.node_baseline_in_.size() != grid.num_buses() ||
      det.node_baseline_out_.size() != grid.num_buses()) {
    return Status::InvalidArgument("baseline size mismatch");
  }
  return det;
}

Result<OutageDetector> OutageDetector::LoadFromFile(
    const std::string& path, const grid::Grid& grid,
    const sim::PmuNetwork& network) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open model file " + path);
  }
  return Load(file, grid, network);
}

}  // namespace phasorwatch::detect
