#ifndef PHASORWATCH_DETECT_ELLIPSE_H_
#define PHASORWATCH_DETECT_ELLIPSE_H_

#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace phasorwatch::detect {

/// A 2-D phasor point (voltage magnitude, voltage angle) for one node.
struct PhasorPoint {
  double vm = 0.0;
  double va = 0.0;
};

/// Per-node normal-operation ellipse (Eq. 4):
///   Omega = { x in R^2 : (x - c)^T A (x - c) <= 1 }.
///
/// Fitted from the node's normal-operation phasor points: c is the
/// sample mean and A the inverse covariance scaled so that every
/// training point lies inside (the paper requires all normal samples in
/// the ellipse). A small inflation margin keeps fresh normal samples
/// from spilling out.
class EllipseModel {
 public:
  /// Fits the ellipse; needs at least 3 points. `margin` inflates the
  /// fitted radius (1.0 = tight fit to the training hull).
  PW_NODISCARD static Result<EllipseModel> Fit(
      const std::vector<PhasorPoint>& points, double margin = 1.15);

  /// Rebuilds an ellipse from stored parameters (model persistence).
  static EllipseModel FromParameters(PhasorPoint center, double a11,
                                     double a12, double a22);

  /// Squared Mahalanobis-like form value (x-c)^T A (x-c).
  double QuadraticForm(const PhasorPoint& p) const;

  /// Membership test: inside (or on) the ellipse.
  bool Contains(const PhasorPoint& p) const {
    return QuadraticForm(p) <= 1.0;
  }

  const PhasorPoint& center() const { return center_; }
  /// Entries of the symmetric 2x2 shape matrix A.
  double a11() const { return a11_; }
  double a12() const { return a12_; }
  double a22() const { return a22_; }

 private:
  PhasorPoint center_;
  double a11_ = 1.0, a12_ = 0.0, a22_ = 1.0;
};

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_ELLIPSE_H_
