#ifndef PHASORWATCH_DETECT_SUBSPACE_MODEL_H_
#define PHASORWATCH_DETECT_SUBSPACE_MODEL_H_

#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/subspace.h"
#include "sim/measurement.h"

namespace phasorwatch::detect {

/// Which phasor channel feeds the subspace features. The paper's X is
/// "either voltage magnitude or phase measurements"; kBoth stacks the
/// two channels into a 2N feature vector, which sharpens weak-line
/// signatures (reactive effects show in magnitudes).
enum class PhasorChannel { kMagnitude, kAngle, kBoth };

/// Options for learning an operating-condition subspace model.
struct SubspaceModelOptions {
  PhasorChannel channel = PhasorChannel::kBoth;
  /// Left singular vectors with singular value <= rel_tol * s_max are
  /// kept as constraint directions (the paper's "vectors of U
  /// corresponding to the lowest singular values").
  double constraint_rel_tol = 0.12;
  size_t min_constraints = 3;
  size_t max_constraints = 64;
  /// Also retain the full left-singular basis (needed to build whitened
  /// classification models; costs O(N^2) memory per model).
  bool keep_full_basis = false;
};

/// Learned model of one operating condition (normal operation or one
/// line-outage case), following Sec. IV-A.
///
/// The SVD of the centered data matrix X splits R^N into high-variance
/// directions (load-driven variation) and low-variance directions. The
/// low-variance left singular vectors are *constraints*: for any sample
/// x of this condition, B^T (x - mean) ~ 0 where B stacks those vectors.
/// Proximity of a sample to the model is the squared violation of its
/// constraints, which is exactly the squared Euclidean distance from the
/// centered sample to the model's signal subspace.
///
/// Note on Eq. (3): the paper composes per-line models into union /
/// intersection subspaces of their *solution sets*. On the constraint
/// bases stored here those operations flip: the union of solution sets
/// corresponds to intersecting constraint sets, and vice versa. The
/// NodeSubspaces builder below applies that duality.
struct SubspaceModel {
  linalg::Vector mean;          ///< training mean of the feature vector
  linalg::Subspace constraints; ///< low-variance directions (ambient N)
  linalg::Vector singular_values;  ///< full spectrum (diagnostics)
  /// Full left-singular basis (columns sorted by descending singular
  /// value); empty unless SubspaceModelOptions::keep_full_basis.
  linalg::Matrix full_basis;

  size_t ambient_dim() const { return mean.size(); }

  /// Squared constraint violation ||B^T (x - mean)||^2 for a complete
  /// sample.
  double Proximity(const linalg::Vector& x) const;
};

/// Builds a whitened (LDA-style) classification model: the "constraint"
/// matrix holds the reference model's full basis with each direction
/// scaled by its inverse standard deviation (ridged at the bottom
/// quartile of the spectrum), paired with `mean`. The proximity of a
/// sample to such a model is the Mahalanobis distance under the shared
/// reference covariance — the statistically efficient statistic for
/// mean-shifted classes like line outages. Note the stored basis is
/// intentionally NOT orthonormal; the proximity machinery treats it as
/// a general coefficient matrix.
///
/// `reference` must carry a full basis; `num_samples` is the training
/// sample count behind the reference spectrum.
SubspaceModel MakeWhitenedClassModel(const SubspaceModel& reference,
                                     linalg::Vector mean,
                                     size_t num_samples);

/// Extracts the configured channel's feature matrix (num_nodes x T).
linalg::Matrix FeatureMatrix(const sim::PhasorDataSet& data,
                             PhasorChannel channel);

/// Extracts the configured channel's feature vector for one sample.
linalg::Vector FeatureVector(const linalg::Vector& vm, const linalg::Vector& va,
                             PhasorChannel channel);

/// FeatureVector into a reused buffer (Assign keeps capacity, so a
/// warmed per-sample loop extracts features without allocating).
PW_NO_ALLOC void FeatureVectorInto(const linalg::Vector& vm,
                                   const linalg::Vector& va,
                       PhasorChannel channel, linalg::Vector* out);

/// Learns a subspace model from measurements of one condition.
PW_NODISCARD Result<SubspaceModel> LearnSubspaceModel(
    const sim::PhasorDataSet& data, const SubspaceModelOptions& options);

/// Per-node composite subspaces of Eq. (3), built from the models of
/// every line-outage case incident to the node.
struct NodeSubspaces {
  /// Paper's S_i-union: close when >= 1 line of the node is out.
  /// Constraint basis = soft intersection of the member constraint sets.
  SubspaceModel union_model;
  /// Paper's S_i-intersection: close only under severe multi-line
  /// outages of the node. Constraint basis = union of the member
  /// constraint sets.
  SubspaceModel intersection_model;
};

/// Composes the per-line models incident to one node. `cos_tol` controls
/// the numerical soft-intersection of constraint bases (directions whose
/// average-projector eigenvalue exceeds it are treated as shared).
/// `lowrank_composition` computes that spectrum through the summed-rank
/// Gram matrix instead of the dense ambient-dimension eigensolve — the
/// same subspace up to roundoff (not bit-identical), and the path
/// large-grid training takes (docs/SPARSE.md).
NodeSubspaces BuildNodeSubspaces(const std::vector<const SubspaceModel*>& line_models,
                                 double cos_tol = 0.6,
                                 bool lowrank_composition = false);

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_SUBSPACE_MODEL_H_
