#include "detect/session.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace phasorwatch::detect {
namespace {

// Errors the session may absorb as rejected samples under
// tolerate_bad_samples: malformed measurements and data starvation are
// facts of life on a PMU feed. Everything else (internal errors,
// numerical failures) still propagates.
bool IsBadSampleError(StatusCode code) {
  return code == StatusCode::kInvalidArgument ||
         code == StatusCode::kDataMissing;
}

// TenantSnapshot wire format tag ("PWSNAP" + 2-digit version; PWSNAP02
// added the per-vote confidence vectors of the multi-line detector).
constexpr uint64_t kSnapshotMagic = 0x5057534e41503032ull;  // "PWSNAP02"
// A vote window is a handful of candidate sets; anything beyond this is
// corrupt input, not a real snapshot.
constexpr uint64_t kMaxSnapshotVotes = 1 << 16;

#ifndef PW_OBS_DISABLED
// "Bus1-Bus2:0.97" entries for the event log's outage_set field.
std::vector<std::string> OutageSetNames(
    const OutageDetector& detector,
    const std::vector<DetectionResult::OutageHypothesis>& set) {
  std::vector<std::string> names;
  names.reserve(set.size());
  for (const DetectionResult::OutageHypothesis& h : set) {
    char conf[32];
    std::snprintf(conf, sizeof(conf), ":%.2f", h.confidence);
    names.push_back(detector.grid().LineName(h.line) + conf);
  }
  return names;
}
#endif

}  // namespace

TenantSession::TenantSession(std::shared_ptr<OutageDetector> detector,
                             const StreamOptions& options, std::string label)
    : model_(std::move(detector)),
      options_(options),
      label_(std::move(label)) {
  PW_CHECK(model_.load(std::memory_order_relaxed) != nullptr);
  PW_CHECK_GT(options_.alarm_after, 0u);
  PW_CHECK_GT(options_.clear_after, 0u);
  PW_CHECK_GT(options_.vote_window, 0u);
}

std::shared_ptr<OutageDetector> TenantSession::AcquireModel() {
  std::shared_ptr<OutageDetector> model =
      model_.load(std::memory_order_acquire);
  if (model.get() != memo_model_) {
    // A reload happened since the batch memo was warmed; its cached
    // group selection and regressor keys belong to the old instance.
    batch_memo_.Clear();
    memo_model_ = model.get();
  }
  return model;
}

void TenantSession::ReloadModel(std::shared_ptr<OutageDetector> model) {
  PW_CHECK(model != nullptr);
  model_.store(std::move(model), std::memory_order_release);
  PW_OBS_COUNTER_INC("stream.model_reloads");
#ifndef PW_OBS_DISABLED
  if (!label_.empty()) {
    obs::EventLog::Global().Emit("model_reloaded").Str("tenant", label_);
  } else {
    obs::EventLog::Global().Emit("model_reloaded");
  }
#endif
}

Result<StreamEvent> TenantSession::Process(const linalg::Vector& vm,
                                           const linalg::Vector& va,
                                           const sim::MissingMask& mask) {
  // End-to-end per-sample latency (detector + debounce), tail-accurate
  // via the like-named quantile histogram.
  PW_TRACE_SCOPE("stream.sample_us");
  std::shared_ptr<OutageDetector> model = AcquireModel();
  Result<DetectionResult> raw = model->Detect(vm, va, mask);
  if (!raw.ok()) {
    if (!options_.tolerate_bad_samples ||
        !IsBadSampleError(raw.status().code())) {
      return raw.status();
    }
    return RejectSample(raw.status());
  }
  return Debounce(*model, std::move(raw).value());
}

Result<StreamEvent> TenantSession::ProcessFrame(
    const sim::MeasurementFrame& frame) {
  // End-to-end frame latency, transport screening included. The
  // `.high_water` gauge keeps the worst single frame ever seen — the
  // number an operator compares against the PMU reporting interval.
  PW_TRACE_SCOPE_HIGH_WATER("stream.frame_us");
  if (frame.dropped) {
    PW_OBS_COUNTER_INC("stream.frames_dropped");
    counters_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
    Status reason = Status::DataMissing("frame dropped in transport");
    if (!options_.tolerate_bad_samples) return reason;
    return RejectSample(reason);
  }
  if (has_timestamp_ && frame.timestamp_us <= last_timestamp_us_) {
    PW_OBS_COUNTER_INC("stream.frames_stale");
    counters_.frames_stale.fetch_add(1, std::memory_order_relaxed);
    Status reason = Status::InvalidArgument(
        "frame timestamp did not advance (stale or replayed data)");
    if (!options_.tolerate_bad_samples) return reason;
    return RejectSample(reason);
  }
  last_timestamp_us_ = frame.timestamp_us;
  has_timestamp_ = true;
  return Process(frame.vm, frame.va, frame.mask);
}

Result<std::vector<StreamEvent>> TenantSession::ProcessBatch(
    const std::vector<OutageDetector::BatchSample>& samples) {
  PW_TRACE_SCOPE("stream.batch_us");
  for (const OutageDetector::BatchSample& sample : samples) {
    if (sample.vm == nullptr || sample.va == nullptr ||
        sample.mask == nullptr) {
      return Status::InvalidArgument("ProcessBatch sample has null fields");
    }
  }
#ifndef PW_OBS_DISABLED
  const double batch_start_us = obs::MonotonicNowUs();
#endif
  std::shared_ptr<OutageDetector> model = AcquireModel();
  Result<std::vector<DetectionResult>> raws =
      model->DetectBatch(samples, &batch_memo_);
  if (raws.ok()) {
    std::vector<StreamEvent> events;
    events.reserve(raws.value().size());
    for (DetectionResult& raw : raws.value()) {
      events.push_back(Debounce(*model, std::move(raw)));
    }
#ifndef PW_OBS_DISABLED
    // Amortized per-frame latency: the batch path must feed the same
    // `stream.frame_us` series ProcessFrame feeds, or a monitor that
    // drains PDC buffers in blocks would report an empty tail.
    if (!events.empty()) {
      const double per_sample_us =
          (obs::MonotonicNowUs() - batch_start_us) /
          static_cast<double>(events.size());
      for (size_t i = 0; i < events.size(); ++i) {
        PW_OBS_QUANTILE_RECORD("stream.frame_us", per_sample_us);
      }
      PW_OBS_GAUGE_MAX("stream.frame_us.high_water", per_sample_us);
    }
#endif
    return events;
  }
  if (!options_.tolerate_bad_samples ||
      !IsBadSampleError(raws.status().code())) {
    return raws.status();
  }
  // A bad sample aborts the whole DetectBatch call, so replay the block
  // sample by sample: only the offending samples become rejected
  // events. Detector-level counters count the aborted batch prefix a
  // second time here — operational metrics, not exact tallies, under
  // fault conditions.
  std::vector<StreamEvent> events;
  events.reserve(samples.size());
  for (const OutageDetector::BatchSample& sample : samples) {
    PW_ASSIGN_OR_RETURN(StreamEvent event,
                        Process(*sample.vm, *sample.va, *sample.mask));
    events.push_back(std::move(event));
  }
  return events;
}

StreamEvent TenantSession::RejectSample(const Status& reason) {
  StreamEvent event;
  event.sample_index = next_sample_++;
  event.sample_rejected = true;
  event.alarm_active = alarm_active_.load(std::memory_order_relaxed);
  PW_OBS_COUNTER_INC("stream.samples_rejected");
  counters_.samples_rejected.fetch_add(1, std::memory_order_relaxed);
  static_cast<void>(reason);
#ifndef PW_OBS_DISABLED
  {
    obs::EventLog::Event log_event =
        obs::EventLog::Global().Emit("sample_rejected");
    log_event.Uint("sample", event.sample_index)
        .Str("reason", reason.ToString());
    if (!label_.empty()) log_event.Str("tenant", label_);
  }
#endif
  return event;
}

StreamEvent TenantSession::Debounce(const OutageDetector& detector,
                                    DetectionResult raw) {
  // The alarm stage proper: debounce counters, majority vote, event
  // emission — everything after the detector returns.
  PW_TRACE_SCOPE("stream.stage.alarm_us");
  static_cast<void>(detector);  // Only read by the obs-gated event log.
  StreamEvent event;
  event.sample_index = next_sample_++;
  PW_OBS_COUNTER_INC("stream.samples");
  counters_.samples.fetch_add(1, std::memory_order_relaxed);
  event.raw = std::move(raw);

  if (event.raw.outage_detected) {
    ++consecutive_positive_;
    consecutive_negative_ = 0;
    recent_votes_.push_back(event.raw.lines);
    // Confidence vector in lockstep with the vote: multi-line raw
    // detections carry per-line confidences in outage_set (same lines,
    // same order); legacy detections vote with full confidence.
    std::vector<double> confidences(event.raw.lines.size(), 1.0);
    if (event.raw.outage_set.size() == event.raw.lines.size()) {
      for (size_t k = 0; k < event.raw.outage_set.size(); ++k) {
        confidences[k] = event.raw.outage_set[k].confidence;
      }
    }
    recent_confidences_.push_back(std::move(confidences));
    while (recent_votes_.size() > options_.vote_window) {
      recent_votes_.pop_front();
      recent_confidences_.pop_front();
    }
  } else {
    ++consecutive_negative_;
    consecutive_positive_ = 0;
  }

  if (!alarm_active_ && consecutive_positive_ >= options_.alarm_after) {
    alarm_active_ = true;
    event.alarm_raised = true;
  } else if (alarm_active_ && consecutive_negative_ >= options_.clear_after) {
    alarm_active_ = false;
    event.alarm_cleared = true;
    recent_votes_.clear();
    recent_confidences_.clear();
  }

  event.alarm_active = alarm_active_;
  if (alarm_active_) {
    event.lines = MajorityLines();
    event.outage_set = MajorityOutageSet(event.lines);
  }

  if (event.alarm_raised) {
    counters_.alarms_raised.fetch_add(1, std::memory_order_relaxed);
  } else if (event.alarm_cleared) {
    counters_.alarms_cleared.fetch_add(1, std::memory_order_relaxed);
  }

#ifndef PW_OBS_DISABLED
  PW_OBS_GAUGE_SET("stream.alarm_active", alarm_active_ ? 1 : 0);
  if (event.alarm_raised) {
    PW_OBS_COUNTER_INC("stream.alarms_raised");
    obs::EventLog::Event log_event =
        obs::EventLog::Global().Emit("alarm_raised");
    log_event.Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score)
        .StrList("candidate_lines", LineNames(detector, event.lines));
    if (!event.outage_set.empty()) {
      log_event.StrList("outage_set", OutageSetNames(detector, event.outage_set));
    }
    if (!label_.empty()) log_event.Str("tenant", label_);
  } else if (event.alarm_cleared) {
    PW_OBS_COUNTER_INC("stream.alarms_cleared");
    obs::EventLog::Event log_event =
        obs::EventLog::Global().Emit("alarm_cleared");
    log_event.Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score);
    if (!label_.empty()) log_event.Str("tenant", label_);
  } else if (alarm_active_) {
    // Steady-state alarm tick: record the (possibly re-voted) F-hat so
    // the JSONL log shows the candidate set evolving sample by sample.
    obs::EventLog::Event log_event = obs::EventLog::Global().Emit("alarm_vote");
    log_event.Uint("sample", event.sample_index)
        .Num("decision_score", event.raw.decision_score)
        .StrList("candidate_lines", LineNames(detector, event.lines));
    if (!event.outage_set.empty()) {
      log_event.StrList("outage_set", OutageSetNames(detector, event.outage_set));
    }
    if (!label_.empty()) log_event.Str("tenant", label_);
  }
  // Per-sample heartbeat for debugging; rate-limited so a 30-60 Hz PMU
  // stream cannot flood stderr.
  PW_LOG_EVERY_N(Debug, 30) << "stream: sample " << event.sample_index
                            << " score=" << event.raw.decision_score
                            << (alarm_active_ ? " [ALARM]" : "");
#endif  // PW_OBS_DISABLED
  return event;
}

Result<StreamEvent> TenantSession::Process(const linalg::Vector& vm,
                                           const linalg::Vector& va) {
  return Process(vm, va, sim::MissingMask::None(vm.size()));
}

void TenantSession::Reset() {
  alarm_active_ = false;
  consecutive_positive_ = 0;
  consecutive_negative_ = 0;
  next_sample_ = 0;
  recent_votes_.clear();
  recent_confidences_.clear();
  last_timestamp_us_ = 0;
  has_timestamp_ = false;
  // The batch memo's group selection belongs to the stream the operator
  // just acknowledged away; a fresh monitor has no warm selection, and
  // Reset must behave exactly like one (tests/stream_test.cc pins this).
  batch_memo_.Clear();
#ifndef PW_OBS_DISABLED
  if (!label_.empty()) {
    obs::EventLog::Global().Emit("monitor_reset").Str("tenant", label_);
  } else {
    obs::EventLog::Global().Emit("monitor_reset");
  }
  PW_OBS_GAUGE_SET("stream.alarm_active", 0);
#endif
}

TenantSnapshot TenantSession::Snapshot() const {
  TenantSnapshot snapshot;
  snapshot.next_sample_index = next_sample_.load(std::memory_order_relaxed);
  snapshot.alarm_active = alarm_active_.load(std::memory_order_relaxed);
  snapshot.consecutive_positive = consecutive_positive_;
  snapshot.consecutive_negative = consecutive_negative_;
  snapshot.recent_votes.assign(recent_votes_.begin(), recent_votes_.end());
  snapshot.recent_confidences.assign(recent_confidences_.begin(),
                                     recent_confidences_.end());
  snapshot.last_timestamp_us = last_timestamp_us_;
  snapshot.has_timestamp = has_timestamp_;
  snapshot.samples = counters_.samples.load(std::memory_order_relaxed);
  snapshot.samples_rejected =
      counters_.samples_rejected.load(std::memory_order_relaxed);
  snapshot.frames_dropped =
      counters_.frames_dropped.load(std::memory_order_relaxed);
  snapshot.frames_stale =
      counters_.frames_stale.load(std::memory_order_relaxed);
  snapshot.alarms_raised =
      counters_.alarms_raised.load(std::memory_order_relaxed);
  snapshot.alarms_cleared =
      counters_.alarms_cleared.load(std::memory_order_relaxed);
  return snapshot;
}

Status TenantSession::Restore(const TenantSnapshot& snapshot) {
  const size_t num_buses = model()->grid().num_buses();
  for (const std::vector<grid::LineId>& vote : snapshot.recent_votes) {
    for (const grid::LineId& line : vote) {
      if (line.i >= num_buses || line.j >= num_buses) {
        return Status::InvalidArgument(
            "snapshot vote references a bus outside the tenant's grid");
      }
    }
  }
  if (snapshot.recent_confidences.size() != snapshot.recent_votes.size()) {
    return Status::InvalidArgument(
        "snapshot confidence window out of step with the vote window");
  }
  for (size_t v = 0; v < snapshot.recent_votes.size(); ++v) {
    if (snapshot.recent_confidences[v].size() !=
        snapshot.recent_votes[v].size()) {
      return Status::InvalidArgument(
          "snapshot vote and its confidences disagree on line count");
    }
  }
  next_sample_.store(snapshot.next_sample_index, std::memory_order_release);
  alarm_active_.store(snapshot.alarm_active, std::memory_order_release);
  consecutive_positive_ = snapshot.consecutive_positive;
  consecutive_negative_ = snapshot.consecutive_negative;
  recent_votes_.assign(snapshot.recent_votes.begin(),
                       snapshot.recent_votes.end());
  recent_confidences_.assign(snapshot.recent_confidences.begin(),
                             snapshot.recent_confidences.end());
  last_timestamp_us_ = snapshot.last_timestamp_us;
  has_timestamp_ = snapshot.has_timestamp;
  counters_.samples.store(snapshot.samples, std::memory_order_relaxed);
  counters_.samples_rejected.store(snapshot.samples_rejected,
                                   std::memory_order_relaxed);
  counters_.frames_dropped.store(snapshot.frames_dropped,
                                 std::memory_order_relaxed);
  counters_.frames_stale.store(snapshot.frames_stale,
                               std::memory_order_relaxed);
  counters_.alarms_raised.store(snapshot.alarms_raised,
                                std::memory_order_relaxed);
  counters_.alarms_cleared.store(snapshot.alarms_cleared,
                                 std::memory_order_relaxed);
  // The memo was warmed by the pre-restore stream; the restored stream
  // starts clean, exactly like the failed-over session it resumes.
  batch_memo_.Clear();
  return Status::OK();
}

std::vector<grid::LineId> TenantSession::MajorityLines() const {
  // Count appearances of each candidate line over the window; keep the
  // lines present in more than half of the votes. Falls back to the
  // most recent raw candidate set when nothing clears the bar (early in
  // an event the window is short).
  std::map<grid::LineId, size_t> counts;
  for (const auto& vote : recent_votes_) {
    for (const grid::LineId& line : vote) ++counts[line];
  }
  std::vector<grid::LineId> majority;
  size_t needed = recent_votes_.size() / 2 + 1;
  for (const auto& [line, count] : counts) {
    if (count >= needed) majority.push_back(line);
  }
  if (majority.empty() && !recent_votes_.empty()) {
    majority = recent_votes_.back();
  }
  return majority;
}

std::vector<DetectionResult::OutageHypothesis>
TenantSession::MajorityOutageSet(
    const std::vector<grid::LineId>& majority) const {
  // Mean confidence per majority line over the votes that carried it.
  // Legacy (single-line) votes store 1.0 per line, so a pure legacy
  // window reports the majority set with full confidence — callers that
  // only care about multi-line output key off the detector options.
  std::vector<DetectionResult::OutageHypothesis> set;
  if (recent_votes_.empty()) return set;
  set.reserve(majority.size());
  for (const grid::LineId& line : majority) {
    double sum = 0.0;
    size_t carried = 0;
    for (size_t v = 0; v < recent_votes_.size(); ++v) {
      const std::vector<grid::LineId>& vote = recent_votes_[v];
      for (size_t k = 0; k < vote.size(); ++k) {
        if (vote[k] == line) {
          sum += recent_confidences_[v][k];
          ++carried;
          break;
        }
      }
    }
    set.push_back({line, carried > 0 ? sum / carried : 0.0});
  }
  return set;
}

std::vector<std::string> TenantSession::LineNames(
    const OutageDetector& detector,
    const std::vector<grid::LineId>& lines) const {
  std::vector<std::string> names;
  names.reserve(lines.size());
  for (const grid::LineId& line : lines) {
    names.push_back(detector.grid().LineName(line));
  }
  return names;
}

Status TenantSnapshot::WriteTo(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.WriteU64(kSnapshotMagic);
  writer.WriteU64(next_sample_index);
  writer.WriteBool(alarm_active);
  writer.WriteU64(consecutive_positive);
  writer.WriteU64(consecutive_negative);
  writer.WriteU64(recent_votes.size());
  for (const std::vector<grid::LineId>& vote : recent_votes) {
    // Each vote flattens to [i0, j0, i1, j1, ...]; LineId normalizes
    // i < j on construction, so the flat form round-trips exactly.
    std::vector<size_t> flat;
    flat.reserve(vote.size() * 2);
    for (const grid::LineId& line : vote) {
      flat.push_back(line.i);
      flat.push_back(line.j);
    }
    writer.WriteSizeVector(flat);
  }
  // Confidence vectors, aligned 1:1 with the votes above (PWSNAP02).
  writer.WriteU64(recent_confidences.size());
  for (const std::vector<double>& confidences : recent_confidences) {
    writer.WriteDoubleVector(confidences);
  }
  writer.WriteU64(last_timestamp_us);
  writer.WriteBool(has_timestamp);
  writer.WriteU64(samples);
  writer.WriteU64(samples_rejected);
  writer.WriteU64(frames_dropped);
  writer.WriteU64(frames_stale);
  writer.WriteU64(alarms_raised);
  writer.WriteU64(alarms_cleared);
  if (!writer.ok()) {
    return Status::Internal("TenantSnapshot write failed (stream error)");
  }
  return Status::OK();
}

Result<TenantSnapshot> TenantSnapshot::ReadFrom(std::istream& in) {
  BinaryReader reader(in);
  PW_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadU64());
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a PWSNAP02 tenant snapshot");
  }
  TenantSnapshot snapshot;
  PW_ASSIGN_OR_RETURN(snapshot.next_sample_index, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(snapshot.alarm_active, reader.ReadBool());
  PW_ASSIGN_OR_RETURN(snapshot.consecutive_positive, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(snapshot.consecutive_negative, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(uint64_t num_votes, reader.ReadU64());
  if (num_votes > kMaxSnapshotVotes) {
    return Status::InvalidArgument("tenant snapshot vote window too large");
  }
  snapshot.recent_votes.reserve(num_votes);
  for (uint64_t v = 0; v < num_votes; ++v) {
    PW_ASSIGN_OR_RETURN(std::vector<size_t> flat, reader.ReadSizeVector());
    if (flat.size() % 2 != 0) {
      return Status::InvalidArgument(
          "tenant snapshot vote has a dangling bus index");
    }
    std::vector<grid::LineId> vote;
    vote.reserve(flat.size() / 2);
    for (size_t k = 0; k + 1 < flat.size(); k += 2) {
      vote.emplace_back(flat[k], flat[k + 1]);
    }
    snapshot.recent_votes.push_back(std::move(vote));
  }
  PW_ASSIGN_OR_RETURN(uint64_t num_confidences, reader.ReadU64());
  if (num_confidences != num_votes) {
    return Status::InvalidArgument(
        "tenant snapshot confidence window out of step with its votes");
  }
  snapshot.recent_confidences.reserve(num_confidences);
  for (uint64_t v = 0; v < num_confidences; ++v) {
    PW_ASSIGN_OR_RETURN(std::vector<double> confidences,
                        reader.ReadDoubleVector());
    if (confidences.size() != snapshot.recent_votes[v].size()) {
      return Status::InvalidArgument(
          "tenant snapshot vote and its confidences disagree on line count");
    }
    snapshot.recent_confidences.push_back(std::move(confidences));
  }
  PW_ASSIGN_OR_RETURN(snapshot.last_timestamp_us, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(snapshot.has_timestamp, reader.ReadBool());
  PW_ASSIGN_OR_RETURN(snapshot.samples, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(snapshot.samples_rejected, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(snapshot.frames_dropped, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(snapshot.frames_stale, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(snapshot.alarms_raised, reader.ReadU64());
  PW_ASSIGN_OR_RETURN(snapshot.alarms_cleared, reader.ReadU64());
  return snapshot;
}

}  // namespace phasorwatch::detect
