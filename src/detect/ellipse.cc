#include "detect/ellipse.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace phasorwatch::detect {

Result<EllipseModel> EllipseModel::Fit(const std::vector<PhasorPoint>& points,
                                       double margin) {
  if (points.size() < 3) {
    return Status::InvalidArgument("ellipse fit needs at least 3 points");
  }
  if (margin <= 0.0) {
    return Status::InvalidArgument("ellipse margin must be positive");
  }

  EllipseModel e;
  const double n = static_cast<double>(points.size());
  double mx = 0.0, my = 0.0;
  for (const auto& p : points) {
    mx += p.vm;
    my += p.va;
  }
  mx /= n;
  my /= n;
  e.center_ = {mx, my};

  // Sample covariance with a small ridge so a flat (zero-variance)
  // channel still yields a valid ellipse.
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (const auto& p : points) {
    double dx = p.vm - mx;
    double dy = p.va - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  sxx /= n - 1.0;
  sxy /= n - 1.0;
  syy /= n - 1.0;
  double ridge = 1e-10 + 1e-6 * std::max(sxx, syy);
  sxx += ridge;
  syy += ridge;

  // A0 = inverse covariance.
  double det = sxx * syy - sxy * sxy;
  double a11 = syy / det;
  double a12 = -sxy / det;
  double a22 = sxx / det;

  // Scale so every training point satisfies the form <= 1 even with the
  // inflation margin applied.
  double max_form = 0.0;
  for (const auto& p : points) {
    double dx = p.vm - mx;
    double dy = p.va - my;
    double form = a11 * dx * dx + 2.0 * a12 * dx * dy + a22 * dy * dy;
    max_form = std::max(max_form, form);
  }
  double scale = max_form > 0.0 ? 1.0 / (max_form * margin * margin) : 1.0;
  e.a11_ = a11 * scale;
  e.a12_ = a12 * scale;
  e.a22_ = a22 * scale;
  return e;
}

EllipseModel EllipseModel::FromParameters(PhasorPoint center, double a11,
                                          double a12, double a22) {
  EllipseModel e;
  e.center_ = center;
  e.a11_ = a11;
  e.a12_ = a12;
  e.a22_ = a22;
  return e;
}

double EllipseModel::QuadraticForm(const PhasorPoint& p) const {
  double dx = p.vm - center_.vm;
  double dy = p.va - center_.va;
  return a11_ * dx * dx + 2.0 * a12_ * dx * dy + a22_ * dy * dy;
}

}  // namespace phasorwatch::detect
