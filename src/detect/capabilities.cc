#include "detect/capabilities.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/status.h"

namespace phasorwatch::detect {

Result<CapabilityTable> CapabilityTable::Build(
    const grid::Grid& grid, const std::vector<EllipseModel>& ellipses,
    const sim::PhasorDataSet& normal_data,
    const std::vector<grid::LineId>& case_lines,
    const std::vector<const sim::PhasorDataSet*>& outage_data) {
  const size_t n = grid.num_buses();
  if (ellipses.size() != n) {
    return Status::InvalidArgument("one ellipse per node required");
  }
  if (case_lines.size() != outage_data.size()) {
    return Status::InvalidArgument("case/line count mismatch");
  }
  if (normal_data.num_nodes() != n) {
    return Status::InvalidArgument("normal data node-count mismatch");
  }

  CapabilityTable table;
  table.per_case_.assign(case_lines.size(), std::vector<double>(n, 0.0));

  // Eq. 5 denominator: per node, the count of normal samples inside the
  // node's ellipse. Practically ~T by construction of the ellipse fit.
  std::vector<double> inside_normal(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    for (size_t t = 0; t < normal_data.num_samples(); ++t) {
      PhasorPoint p{normal_data.vm(k, t), normal_data.va(k, t)};
      if (ellipses[k].Contains(p)) inside_normal[k] += 1.0;
    }
    // Guard: an ellipse that rejects all normal data would divide by
    // zero; treat it as having no detection capability instead.
    inside_normal[k] = std::max(inside_normal[k], 1.0);
  }

  for (size_t c = 0; c < case_lines.size(); ++c) {
    const sim::PhasorDataSet& data = *outage_data[c];
    if (data.num_nodes() != n) {
      return Status::InvalidArgument("outage data node-count mismatch");
    }
    for (size_t k = 0; k < n; ++k) {
      double outside = 0.0;
      for (size_t t = 0; t < data.num_samples(); ++t) {
        PhasorPoint p{data.vm(k, t), data.va(k, t)};
        if (!ellipses[k].Contains(p)) outside += 1.0;
      }
      // Eq. 5, clamped into [0, 1]: the ratio can exceed 1 when the
      // denominator undercounts, but a probability is intended.
      table.per_case_[c][k] =
          std::min(1.0, outside * (static_cast<double>(data.num_samples()) /
                                   inside_normal[k]) /
                            static_cast<double>(data.num_samples()));
    }
  }

  // Eqs. 6-7: aggregate per affected node i over all cases involving i.
  table.node_level_ = linalg::Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    // Cases whose outaged line touches node i (the super set F_i).
    std::vector<size_t> involved;
    for (size_t c = 0; c < case_lines.size(); ++c) {
      if (case_lines[c].i == i || case_lines[c].j == i) involved.push_back(c);
    }
    for (size_t k = 0; k < n; ++k) {
      if (involved.empty()) {
        table.node_level_(i, k) = 0.0;
        continue;
      }
      // Union probability under independence; equal to the literal
      // inclusion-exclusion sum of Eq. 7 (verified in tests).
      double miss_all = 1.0;
      for (size_t c : involved) miss_all *= 1.0 - table.per_case_[c][k];
      table.node_level_(i, k) = 1.0 - miss_all;
    }
  }
  return table;
}

CapabilityTable CapabilityTable::FromData(
    std::vector<std::vector<double>> per_case, linalg::Matrix node_level) {
  CapabilityTable table;
  table.per_case_ = std::move(per_case);
  table.node_level_ = std::move(node_level);
  return table;
}

double CapabilityTable::PerCase(size_t case_idx, size_t node_k) const {
  PW_CHECK_LT(case_idx, per_case_.size());
  PW_CHECK_LT(node_k, per_case_[case_idx].size());
  return per_case_[case_idx][node_k];
}

double CapabilityTable::InclusionExclusion(const std::vector<double>& probs) {
  PW_CHECK_LE(probs.size(), 20u);
  const size_t m = probs.size();
  double total = 0.0;
  // Sum over all non-empty subsets; sign alternates with cardinality
  // (Eq. 7's (-1)^{l-1} inner sum over l-subsets).
  for (size_t mask = 1; mask < (size_t{1} << m); ++mask) {
    double product = 1.0;
    int bits = 0;
    for (size_t b = 0; b < m; ++b) {
      if (mask & (size_t{1} << b)) {
        product *= probs[b];
        ++bits;
      }
    }
    total += (bits % 2 == 1 ? 1.0 : -1.0) * product;
  }
  return total;
}

}  // namespace phasorwatch::detect
