#ifndef PHASORWATCH_DETECT_SESSION_H_
#define PHASORWATCH_DETECT_SESSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "detect/detector.h"
#include "sim/fault_injection.h"

namespace phasorwatch::detect {

/// Debouncing policy for a tenant session / streaming monitor.
struct StreamOptions {
  /// Consecutive outage-positive samples before the alarm is raised.
  /// PMUs deliver 30-60 samples/s, so even 3 costs only ~100 ms of
  /// latency while suppressing single-sample flicker.
  size_t alarm_after = 2;
  /// Consecutive normal samples before an active alarm clears.
  size_t clear_after = 3;
  /// Sliding window of recent positive detections used for the majority
  /// vote over candidate lines.
  size_t vote_window = 8;
  /// A PMU feed drops frames, garbles payloads, and repeats stale data;
  /// a monitor that returns an error on every such sample is useless in
  /// production. With this set (the default), samples the detector
  /// rejects as malformed or data-starved become `sample_rejected`
  /// events — the debouncing state is untouched, exactly as if the
  /// sample had never arrived — and only programming errors propagate.
  /// Clear it to surface every rejection as a Status (strict mode for
  /// tests and offline replays).
  bool tolerate_bad_samples = true;
};

/// One processed sample's outcome.
struct StreamEvent {
  /// 0-based index of the sample within this session's stream (resets
  /// with Reset()); alarm events in the JSONL log carry the same index.
  uint64_t sample_index = 0;
  bool alarm_active = false;
  bool alarm_raised = false;   ///< transitioned to active at this sample
  bool alarm_cleared = false;  ///< transitioned to inactive at this sample
  /// The sample was dropped, stale, or rejected by the detector
  /// (StreamOptions::tolerate_bad_samples); debouncing state was not
  /// advanced and `raw`/`lines` carry no detection.
  bool sample_rejected = false;
  /// Majority-voted candidate lines over the vote window (stable F-hat);
  /// empty while no alarm is active.
  std::vector<grid::LineId> lines;
  /// Multi-line identification view of `lines`: the same majority-voted
  /// lines annotated with their mean per-line confidence over the votes
  /// that carried them. Populated only while an alarm is active AND the
  /// detector runs with max_outage_lines >= 2 (otherwise raw detections
  /// carry no outage_set and this stays empty).
  std::vector<DetectionResult::OutageHypothesis> outage_set;
  /// The raw single-sample detection (for logging/inspection).
  DetectionResult raw;
};

/// Per-tenant ingest/alarm tallies, updated by the session's producer
/// thread with relaxed atomics so any thread (the fleet engine's
/// TenantRows, an operator CLI) can poll a consistent-enough row
/// without locking. These are per-tenant views of the same happenings
/// the global `stream.*` counters aggregate.
struct TenantCounters {
  std::atomic<uint64_t> samples{0};           ///< debounced samples
  std::atomic<uint64_t> samples_rejected{0};  ///< rejected (bad) samples
  std::atomic<uint64_t> frames_dropped{0};
  std::atomic<uint64_t> frames_stale{0};
  std::atomic<uint64_t> alarms_raised{0};
  std::atomic<uint64_t> alarms_cleared{0};
};

/// A serializable copy of one session's mutable detection state: the
/// debounce counters, the vote window, the frame watermark, and the
/// per-tenant tallies — everything needed to resume a tenant's stream
/// on another engine (failover) minus the model itself, which ships
/// separately as a PWDET04 file. A session restored from a snapshot
/// and fed the same subsequent frames produces bit-identical events to
/// the session the snapshot was taken from.
struct TenantSnapshot {
  uint64_t next_sample_index = 0;
  bool alarm_active = false;
  uint64_t consecutive_positive = 0;
  uint64_t consecutive_negative = 0;
  /// Recent positive detections' candidate sets, oldest first.
  std::vector<std::vector<grid::LineId>> recent_votes;
  /// Per-line confidences aligned 1:1 with `recent_votes` (one entry per
  /// vote, one confidence per line in that vote). Votes from a
  /// single-line detector (no outage_set) carry 1.0 for every line.
  std::vector<std::vector<double>> recent_confidences;
  uint64_t last_timestamp_us = 0;
  bool has_timestamp = false;
  /// TenantCounters values at snapshot time.
  uint64_t samples = 0;
  uint64_t samples_rejected = 0;
  uint64_t frames_dropped = 0;
  uint64_t frames_stale = 0;
  uint64_t alarms_raised = 0;
  uint64_t alarms_cleared = 0;

  /// Binary round trip (PWSNAP02, little-endian, length-prefixed).
  PW_NODISCARD Status WriteTo(std::ostream& out) const;
  PW_NODISCARD static Result<TenantSnapshot> ReadFrom(std::istream& in);
};

/// Per-grid detection state turning the per-sample OutageDetector into
/// an operator-facing alarm stream: debounces the alarm flag,
/// stabilizes the candidate line set by majority vote across recent
/// samples, screens transport-level frame faults, and carries the
/// tenant-scoped lifecycle (hot model reload, snapshot/restore, tenant
/// tallies) the fleet engine (detect/fleet.h) builds on. A
/// single-grid StreamingMonitor (detect/stream.h) is a thin wrapper
/// over one of these.
///
/// Thread-safety contract (single producer, many observers): the
/// Process* family and Reset()/Restore() mutate debouncing state and
/// must be externally serialized — one ingest thread per session, as in
/// a PDC feed; in the fleet engine that thread is the owning shard's
/// drain loop. The cheap observers alarm_active(),
/// samples_processed(), and counters() may be polled concurrently from
/// other threads without locking, and ReloadModel()/model() are safe
/// from any thread (atomic shared_ptr swap; in-flight samples finish
/// on the model they started with).
/// tests/stream_concurrency_test.cc and tests/fleet_concurrency_test.cc
/// pin this contract down under ThreadSanitizer.
class TenantSession {
 public:
  /// `label` tags this tenant's JSONL events (empty = untagged, the
  /// single-grid monitor behavior). The detector is shared: sessions
  /// for identical grids may point at one trained model.
  TenantSession(std::shared_ptr<OutageDetector> detector,
                const StreamOptions& options, std::string label = "");

  /// Feeds one sample; returns the debounced event.
  PW_NODISCARD Result<StreamEvent> Process(const linalg::Vector& vm,
                                           const linalg::Vector& va,
                                           const sim::MissingMask& mask);

  /// Complete-sample convenience.
  PW_NODISCARD Result<StreamEvent> Process(const linalg::Vector& vm,
                                           const linalg::Vector& va);

  /// Feeds one transport-level frame (sim/fault_injection.h), honoring
  /// its metadata before the measurements are even looked at: dropped
  /// frames and frames whose timestamp does not advance past the last
  /// accepted one are rejected (`stream.frames_dropped` /
  /// `stream.frames_stale`), everything else flows into Process().
  /// Producer-thread only.
  PW_NODISCARD Result<StreamEvent> ProcessFrame(
      const sim::MeasurementFrame& frame);

  /// Feeds a block of samples (in stream order) through
  /// OutageDetector::DetectBatch and debounces each result. Events are
  /// identical to calling Process() sample by sample; the batch
  /// amortizes the detector's per-sample fixed costs, which matters
  /// when draining a PDC buffer after a stall. The session keeps the
  /// batch memo (group selection + regressor fast path) warm across
  /// calls; Reset() and model reloads clear it. Producer-thread only,
  /// like Process(). On error no sample of the batch is counted.
  PW_NODISCARD Result<std::vector<StreamEvent>> ProcessBatch(
      const std::vector<OutageDetector::BatchSample>& samples);

  /// Safe to poll from any thread while the producer runs.
  bool alarm_active() const {
    return alarm_active_.load(std::memory_order_acquire);
  }
  /// Samples ingested since construction or the last Reset(), rejected
  /// ones included (each consumes one sample index). Safe to poll from
  /// any thread while the producer runs.
  uint64_t samples_processed() const {
    return next_sample_.load(std::memory_order_acquire);
  }
  /// Drops all debouncing/voting state (e.g. after operator ack),
  /// including the batch-path memoization. Producer-thread only.
  void Reset();

  /// Swaps in a freshly trained/loaded model for the same grid and PMU
  /// network (e.g. from a PWDET04 file). Safe from any thread, while
  /// the producer runs: the swap is an atomic shared_ptr store, samples
  /// already in flight finish on the model they loaded, and the first
  /// sample after the swap runs on the new model with a cleared batch
  /// memo. Debounce state is carried across the reload — the alarm
  /// stream must not flap because operations rolled a model.
  void ReloadModel(std::shared_ptr<OutageDetector> model);

  /// The model new samples will run on. Safe from any thread.
  std::shared_ptr<OutageDetector> model() const {
    return model_.load(std::memory_order_acquire);
  }

  /// Copies the mutable detection state for failover. Producer-thread
  /// only (or externally quiesced), like the Process* family: a
  /// concurrent producer would tear the vote window. The fleet engine
  /// runs it on the owning shard for exactly that reason.
  TenantSnapshot Snapshot() const;

  /// Replaces this session's state with `snapshot` (the inverse of
  /// Snapshot). Validates the vote window against the current model's
  /// grid. Producer-thread only.
  PW_NODISCARD Status Restore(const TenantSnapshot& snapshot);

  const std::string& label() const { return label_; }
  /// Per-tenant tallies; any thread.
  const TenantCounters& counters() const { return counters_; }

 private:
  /// Advances the debouncing state machine with one raw detection and
  /// builds its event (the shared tail of Process and ProcessBatch).
  StreamEvent Debounce(const OutageDetector& detector, DetectionResult raw);

  /// Builds a `sample_rejected` event for a sample the session refuses
  /// to feed into debouncing (consumes a sample index, leaves the
  /// debounce state alone).
  StreamEvent RejectSample(const Status& reason);

  std::vector<grid::LineId> MajorityLines() const;
  /// Annotates the majority lines with their mean confidence over the
  /// votes that carried them (multi-line detectors only; empty when no
  /// vote in the window carried confidences).
  std::vector<DetectionResult::OutageHypothesis> MajorityOutageSet(
      const std::vector<grid::LineId>& majority) const;
  /// Names for a candidate line set, for event logs ("Bus1-Bus2").
  std::vector<std::string> LineNames(
      const OutageDetector& detector,
      const std::vector<grid::LineId>& lines) const;

  /// Current model, with the batch memo invalidated if the model
  /// changed since the memo was warmed. Producer-thread only.
  std::shared_ptr<OutageDetector> AcquireModel();

  /// Atomic swap target for hot reload; all other state below is
  /// producer-thread-owned except where noted.
  std::atomic<std::shared_ptr<OutageDetector>> model_;
  StreamOptions options_;
  std::string label_;

  /// Batch-path memoization, kept warm across ProcessBatch calls.
  /// Bound to one model instance: cleared on Reset() and whenever
  /// AcquireModel observes a reload.
  OutageDetector::BatchMemo batch_memo_;
  const OutageDetector* memo_model_ = nullptr;

  /// Atomic so observers can poll concurrently with the producer; all
  /// writes happen on the producer thread.
  std::atomic<uint64_t> next_sample_{0};
  std::atomic<bool> alarm_active_{false};
  size_t consecutive_positive_ = 0;
  size_t consecutive_negative_ = 0;
  std::deque<std::vector<grid::LineId>> recent_votes_;
  /// Per-line confidences in lockstep with recent_votes_ (pushed,
  /// popped, and cleared together). A vote whose raw detection carried
  /// no outage_set (single-line detector) stores 1.0 per line.
  std::deque<std::vector<double>> recent_confidences_;
  /// Timestamp of the last accepted frame (ProcessFrame staleness
  /// check). Producer-thread only, like the debounce counters.
  uint64_t last_timestamp_us_ = 0;
  bool has_timestamp_ = false;

  TenantCounters counters_;
};

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_SESSION_H_
