#ifndef PHASORWATCH_DETECT_DETECTOR_H_
#define PHASORWATCH_DETECT_DETECTOR_H_

#include <memory>
#include <vector>

#include <iosfwd>

#include "common/check.h"
#include "common/status.h"
#include "detect/capabilities.h"
#include "detect/ellipse.h"
#include "detect/groups.h"
#include "detect/proximity.h"
#include "detect/subspace_model.h"
#include "grid/grid.h"
#include "linalg/matrix.h"
#include "sim/measurement.h"
#include "sim/missing_data.h"
#include "sim/pmu_network.h"

namespace phasorwatch::detect {

/// Training corpus: normal-operation measurements plus one measurement
/// block per valid line-outage case (aligned with `case_lines`).
struct TrainingData {
  const sim::PhasorDataSet* normal = nullptr;
  std::vector<grid::LineId> case_lines;
  std::vector<const sim::PhasorDataSet*> outage;
};

/// How the candidate line set F-hat is derived once an outage is gated.
enum class LocalizationMode {
  /// Whitened per-line class models over all available measurements
  /// (default; sharpest localization).
  kClassModel,
  /// The paper's pure pipeline: scaled node proximities through the
  /// detection groups, sorted, proximity rule, F-hat = lines whose both
  /// endpoints join the affected prefix. Detection-group quality
  /// directly shows here (the Fig. 4 ablation).
  kProximityRule,
};

/// End-to-end tuning for the subspace outage detector.
struct DetectorOptions {
  SubspaceModelOptions subspace;
  DetectionGroupOptions groups;
  LocalizationMode localization = LocalizationMode::kClassModel;
  /// Eigenvalue threshold of the soft constraint intersection used for
  /// the node union subspaces (Eq. 3).
  double soft_intersection_tol = 0.6;
  /// Grids at or above this many buses compose the node union
  /// subspaces through the low-rank Gram path instead of the dense
  /// ambient-dimension eigensolve (0 disables). Same policy knob as
  /// the solver options' sparse_bus_threshold (docs/SPARSE.md): the
  /// paper-scale IEEE systems stay on the dense path bit-for-bit,
  /// while 300+-bus training drops from O(nodes * n^3) to
  /// O(nodes * n * r^2) with r the summed incident-model ranks.
  size_t sparse_bus_threshold = 200;
  /// Ellipse inflation for the capability learning (Eq. 4).
  double ellipse_margin = 1.15;
  /// Apply the proximity scaling of Eq. 11 (ablation switch).
  bool use_scaling = true;
  /// Stop extending the affected-node prefix when the next score jumps
  /// by more than this factor (the "proximity rule" elbow).
  double gap_factor = 12.0;
  /// Hard cap on the affected-node prefix.
  size_t max_affected_nodes = 6;
  /// Calibration samples for the per-cluster normal-residual gates.
  size_t calibration_samples = 60;
  /// Line disambiguation: candidate lines whose per-line outage-model
  /// residual is within this factor of the best line are reported in
  /// F-hat (values > 1 allow multi-line outage sets).
  double line_window = 1.5;
  /// The outage gate fires when a cluster's normal-subspace residual
  /// exceeds `gate_margin` times the largest residual seen on normal
  /// calibration data with the same detection-group variant.
  double gate_margin = 2.5;
  /// Bad-data screening (docs/ROBUSTNESS.md): before detection, every
  /// available node's phasor point is checked against its Eq. 4
  /// normal-operation ellipse; a point carrying a non-finite value or
  /// lying beyond `screen_threshold` times the ellipse bound is gross
  /// bad data in the Li et al. (arXiv:1502.05789) sense and is demoted
  /// to "unavailable", so the Eq. 10 group selection re-selects around
  /// it. With screening disabled, non-finite available values are
  /// rejected via Status instead (garbage must never flow silently).
  bool screen_bad_data = true;
  /// Ellipse-bound multiple separating outage physics from bad data.
  /// Genuine outages move a node's phasors outside its ellipse — that
  /// excursion is exactly what detection keys on — so the screen must
  /// sit far above it. Measured on the IEEE 14/30/57/118 evaluation
  /// systems: genuine quadratic forms stay below ~8.5e2 (normal data
  /// below ~2), while unit-scale gross errors (±0.5 pu, ±1 rad) land
  /// at 1.7e3+ except on IEEE-57, whose wide normal envelope puts some
  /// spikes lower. The default passes all genuine physics with margin;
  /// tighten per deployment if its normal envelope allows.
  double screen_threshold = 1e3;
  /// Second, scale-free gate: an outage is also declared when the best
  /// line-model residual falls below this fraction of the normal-model
  /// residual (both over the pooled detection group). Calibrated
  /// downward if normal data ever gets close to a line model.
  double ratio_gate = 0.8;
  /// Multi-line identification (docs/ROBUSTNESS.md): upper bound on the
  /// outage-set size recovered by greedy residual peeling. The default
  /// of 1 keeps the legacy single-line pipeline — training, detection,
  /// and serialization are bit-identical to a pre-multi-line detector,
  /// and DetectionResult::outage_set stays empty (no allocation on the
  /// hot path). Values >= 2 enable the peeling + composed-pair layer.
  size_t max_outage_lines = 1;
  /// Acceptance calibration for the peeling layer: a further line c is
  /// accepted on top of anchor t only when its normalized residual drop
  ///   delta_c = (r_before - r_after) / ||R d_c||^2
  /// exceeds a threshold tau(c | t) learned at train time. Train peels
  /// each single-outage training sample of case t by its true line and
  /// records the spurious delta_c every OTHER case scores on the peeled
  /// sample; tau(c | t) is this quantile of the (c, t) null cell. The
  /// default 1.0 takes the cell maximum: on training-distribution
  /// single-outage data, no phantom second line is ever accepted, by
  /// construction.
  double peel_null_quantile = 1.0;
  /// Absolute margin added on top of every calibrated tau(c | t) (the
  /// delta statistic is ~ +1 for a genuinely present line): trades
  /// missed weak second lines for fewer phantom ones on data beyond
  /// the calibration corpus.
  double peel_margin = 0.05;
  /// Worker threads for the per-line subspace training fan-out: 0 = one
  /// per hardware core, 1 = serial. Overridable via PW_THREADS (see
  /// common/thread_pool.h). Trained models are bit-identical at every
  /// setting: each line's model is learned independently.
  size_t parallelism = 0;
};

/// Output of one detection query.
struct DetectionResult {
  /// One identified member of a multi-line outage set.
  struct OutageHypothesis {
    grid::LineId line;
    /// 1 - (class residual / peeled normal residual), clamped to
    /// [0, 1] and monotone non-increasing across peels: each later
    /// line is conditioned on every earlier one being real.
    double confidence = 0.0;
  };

  bool outage_detected = false;
  std::vector<grid::LineId> lines;      ///< the candidate set F-hat
  std::vector<size_t> affected_nodes;   ///< prefix of the sorted node list
  linalg::Vector node_scores;           ///< scaled proximities (Eq. 11)
  /// Max over clusters of (normal-subspace residual / calibrated gate);
  /// > 1 means an outage was declared.
  double decision_score = 0.0;
  /// Available nodes demoted to "unavailable" by the bad-data screen
  /// (DetectorOptions::screen_bad_data) before detection ran.
  size_t screened_nodes = 0;
  /// Identified outage set in peeling order, with per-line confidence.
  /// Empty unless DetectorOptions::max_outage_lines >= 2; when
  /// populated, `lines` mirrors the same lines in the same order.
  std::vector<OutageHypothesis> outage_set;
};

/// The paper's robust subspace outage detector (Sec. IV).
///
/// Train() learns, from normal and per-line-outage data: the normal
/// subspace model, per-line outage models, per-node union/intersection
/// subspaces (Eq. 3), per-node normal-operation ellipses (Eq. 4),
/// node detection capabilities (Eqs. 5-7), and per-cluster detection
/// groups (Eq. 8). Detect() evaluates scaled subspace proximities
/// (Eqs. 9-11) through the groups selected by data availability
/// (Eq. 10), applies the proximity rule over the grid topology, and
/// returns the candidate outage line set.
///
/// Thread safety: a trained detector is logically immutable, and
/// Detect() may be called concurrently from multiple threads (its only
/// mutable state is the internal ProximityEngine regressor cache, which
/// is internally synchronized). Train()/Load() themselves must finish
/// before the detector is shared.
class OutageDetector {
 public:
  PW_NODISCARD static Result<OutageDetector> Train(
      const grid::Grid& grid, const sim::PmuNetwork& network,
      const TrainingData& data, const DetectorOptions& options = {});

  /// Classifies one sample. `mask` marks nodes whose measurements are
  /// missing; their entries in vm/va are ignored.
  PW_NO_ALLOC PW_NODISCARD Result<DetectionResult> Detect(
      const linalg::Vector& vm, const linalg::Vector& va,
      const sim::MissingMask& mask);

  /// Convenience for complete samples.
  PW_NODISCARD Result<DetectionResult> Detect(const linalg::Vector& vm,
                                              const linalg::Vector& va) {
    return Detect(vm, va, sim::MissingMask::None(grid_->num_buses()));
  }

  /// One sample of a batched query. Non-owning: the pointed-to vectors
  /// and mask must outlive the DetectBatch call.
  struct BatchSample {
    const linalg::Vector* vm = nullptr;
    const linalg::Vector* va = nullptr;
    const sim::MissingMask* mask = nullptr;
  };

  /// Classifies a batch of samples in order. Results (and observability
  /// counters) are bit-identical to calling Detect() per sample; the
  /// batch amortizes the fixed per-sample work — detection-group
  /// selection is reused across consecutive samples with identical
  /// masks, and regressor-cache lookups skip the shared mutex after the
  /// first sample that resolves each (model, group) pair. Fails on the
  /// first sample error (same short-circuit a caller loop would have).
  PW_NO_ALLOC PW_NODISCARD Result<std::vector<DetectionResult>> DetectBatch(
      const std::vector<BatchSample>& samples);

 private:
  /// Per-thread (or per-memo) reusable buffers for the Detect hot path
  /// (detector.cc).
  struct DetectScratch;

 public:
  /// Caller-owned batch memoization: the scratch buffers, the
  /// detection-group selection, and the regressor fast-path cache that
  /// DetectBatch otherwise keeps in thread-local storage and clears on
  /// every call. A long-lived memo lets a streaming session keep the
  /// amortization warm across consecutive small batches — results and
  /// counters stay bit-identical to the memo-less path, because
  /// selection reuse replays its counters (GroupSelectionStats) and the
  /// regressor fast path ticks exactly like the shared-cache path
  /// (proximity.h). The memo is bound to one detector instance: model
  /// cache keys are only unique within a detector, so the owner MUST
  /// Clear() it before using it with a different instance (the tenant
  /// session does this on model reload and Reset).
  class BatchMemo {
   public:
    BatchMemo();
    ~BatchMemo();
    BatchMemo(BatchMemo&& other) noexcept;
    BatchMemo& operator=(BatchMemo&& other) noexcept;

    /// Drops the memoized group selection and regressor lookups (the
    /// buffers keep their capacity).
    void Clear();

   private:
    friend class OutageDetector;
    std::unique_ptr<DetectScratch> scratch_;  // never null
    ProximityEngine::BatchCache cache_;
  };

  /// DetectBatch with caller-owned memoization. A null `memo` falls
  /// back to the per-call thread-local path above; with a memo, state
  /// persists across calls on this detector until BatchMemo::Clear().
  PW_NO_ALLOC PW_NODISCARD Result<std::vector<DetectionResult>> DetectBatch(
      const std::vector<BatchSample>& samples, BatchMemo* memo);

  // --- introspection for tests, ablations, and figures ---
  /// The grid this detector was trained on (for naming lines in logs).
  const grid::Grid& grid() const { return *grid_; }
  const CapabilityTable& capabilities() const { return capabilities_; }
  const std::vector<ClusterDetectionGroup>& groups() const { return groups_; }
  const SubspaceModel& normal_model() const { return normal_model_; }
  const NodeSubspaces& node_subspaces(size_t node) const {
    return node_models_[node];
  }
  const std::vector<EllipseModel>& ellipses() const { return ellipses_; }
  /// Mean calibrated gate level over clusters (diagnostic).
  double decision_threshold() const;
  size_t proximity_cache_size() const { return engine_.cache_size(); }

  /// An untrained detector; populate via Train().
  OutageDetector() = default;

  // --- model persistence (train offline, load at the control center) ---

  /// Serializes the trained model (not the grid or PMU network — those
  /// are configuration the deployment already has; Load verifies that
  /// the provided ones match what the model was trained on).
  PW_NODISCARD Status Save(std::ostream& out) const;
  PW_NODISCARD Status SaveToFile(const std::string& path) const;

  /// Restores a trained detector. `grid` and `network` must match the
  /// training configuration (checked by fingerprint).
  PW_NODISCARD static Result<OutageDetector> Load(
      std::istream& in, const grid::Grid& grid,
      const sim::PmuNetwork& network);
  PW_NODISCARD static Result<OutageDetector> LoadFromFile(
      const std::string& path, const grid::Grid& grid,
      const sim::PmuNetwork& network);

 private:
  /// One cluster's detection group under a mask (Eq. 10), plus which
  /// variant was chosen (true = the cluster itself had missing data, so
  /// the out-of-cluster members were used).
  struct SelectedGroup {
    std::vector<size_t> members;
    /// Feature-coordinate expansion of `members` (GroupCoordinates),
    /// computed once per selection instead of per proximity query.
    std::vector<size_t> coords;
    bool used_out_of_cluster = false;
  };

  /// Tallies of the observability counters ticked while building a
  /// group selection. When DetectBatch reuses a selection for a
  /// repeated mask, it replays these so counter output is bit-identical
  /// to selecting from scratch for every sample.
  struct GroupSelectionStats {
    uint64_t out_of_cluster_selected = 0;
    uint64_t fallback_alternate_side = 0;
    uint64_t fallback_any_available = 0;
  };

  PW_NO_ALLOC void SelectGroupInto(size_t cluster, const sim::MissingMask& mask,
                       SelectedGroup* selected,
                       GroupSelectionStats* stats) const;
  SelectedGroup SelectGroup(size_t cluster,
                            const sim::MissingMask& mask) const;

  /// Groups for every cluster under this mask, into reused storage.
  PW_NO_ALLOC void SelectGroupsInto(const sim::MissingMask& mask,
                        std::vector<SelectedGroup>* groups,
                        GroupSelectionStats* stats) const;
  std::vector<SelectedGroup> SelectGroups(const sim::MissingMask& mask) const;

  /// Scaled proximity scores for every node (Eqs. 9-11), given the
  /// per-cluster groups, before baseline normalization.
  PW_NO_ALLOC PW_NODISCARD Status RawNodeScoresInto(
      const linalg::Vector& features, const std::vector<SelectedGroup>& groups,
      ProximityEngine::BatchCache* batch_cache, linalg::Vector* scores);
  PW_NODISCARD Result<linalg::Vector> RawNodeScores(
      const linalg::Vector& features,
      const std::vector<SelectedGroup>& groups);

  /// Raw scores divided by the per-node normal-data baselines (making
  /// scores comparable across clusters of different group sizes).
  PW_NO_ALLOC PW_NODISCARD Status NodeScoresInto(const linalg::Vector& features,
                                     const std::vector<SelectedGroup>& groups,
                                     ProximityEngine::BatchCache* batch_cache,
                                     linalg::Vector* scores);

  /// Normal-subspace residual per cluster through its group (the gate
  /// statistic).
  PW_NO_ALLOC PW_NODISCARD Status ClusterNormalResidualsInto(
      const linalg::Vector& features, const std::vector<SelectedGroup>& groups,
      ProximityEngine::BatchCache* batch_cache, linalg::Vector* residuals);
  PW_NODISCARD Result<linalg::Vector> ClusterNormalResiduals(
      const linalg::Vector& features,
      const std::vector<SelectedGroup>& groups);

  /// Input validation + Eq. 4 bad-data screen shared by Detect and
  /// DetectBatch: available nodes carrying non-finite values or points
  /// beyond `screen_threshold` times their normal-operation ellipse are
  /// demoted into `scratch.screened_mask`, and the mask detection
  /// should run under is returned (the input mask when nothing was
  /// screened). With screening disabled, a non-finite available value
  /// is rejected via Status instead.
  PW_NO_ALLOC PW_NODISCARD Result<const sim::MissingMask*> ScreenBadData(
      const linalg::Vector& vm, const linalg::Vector& va,
      const sim::MissingMask& mask, DetectScratch& scratch,
      DetectionResult* result);

  /// Shared loop of the two DetectBatch overloads, parameterized on
  /// whose scratch/cache state it runs against (thread-local or a
  /// caller's BatchMemo).
  PW_NO_ALLOC PW_NODISCARD Result<std::vector<DetectionResult>>
  DetectBatchImpl(const std::vector<BatchSample>& samples,
                  ProximityEngine::BatchCache* batch_cache,
                  DetectScratch& scratch);

  /// Shared body of Detect and DetectBatch. Reuses `scratch` buffers
  /// (allocation-free once warmed, apart from the vectors that escape
  /// in the result) and honors a prior group selection left in
  /// `scratch` when the mask matches (batch fast path).
  PW_NO_ALLOC PW_NODISCARD Result<DetectionResult> DetectImpl(
      const linalg::Vector& vm, const linalg::Vector& va,
      const sim::MissingMask& mask, ProximityEngine::BatchCache* batch_cache,
      DetectScratch& scratch);

  /// Multi-line identification (max_outage_lines >= 2): greedy residual
  /// peeling anchored on the top-ranked candidate, each further line
  /// gated by its calibrated per-case threshold (peel_tau_), up to the
  /// budget, into result->outage_set (and a mirroring result->lines).
  /// Requires scratch.candidates sorted and scratch.pooled_coords
  /// valid (the localization stage state).
  PW_NODISCARD Status IdentifyOutageSet(
      const linalg::Vector& features,
      ProximityEngine::BatchCache* batch_cache, DetectScratch& scratch,
      DetectionResult* result);

  /// Class residual of `features` with case `c`'s mean shift composed
  /// on top of the already-peeled mean in scratch.peel_features, over
  /// the pooled coordinates.
  PW_NO_ALLOC PW_NODISCARD Result<double> PeeledClassResidual(
      size_t c, ProximityEngine::BatchCache* batch_cache,
      DetectScratch& scratch);

  const grid::Grid* grid_ = nullptr;          // not owned
  const sim::PmuNetwork* network_ = nullptr;  // not owned
  DetectorOptions options_;

  SubspaceModel normal_model_;
  /// Whitened classification twin of the normal model (shares the
  /// coefficient matrix with the line class models below).
  SubspaceModel normal_class_model_;
  std::vector<SubspaceModel> line_models_;       // per training case
  /// Classification models for line disambiguation: the normal
  /// model's (well-estimated) constraint basis paired with each
  /// line case's mean. Residuals annihilate shared load modes while
  /// keeping the outage mean shift visible, which is far more robust
  /// on small training sets than the per-line constraint bases.
  std::vector<SubspaceModel> line_class_models_;
  std::vector<grid::LineId> case_lines_;
  std::vector<NodeSubspaces> node_models_;       // per node
  std::vector<EllipseModel> ellipses_;           // per node
  CapabilityTable capabilities_;
  std::vector<ClusterDetectionGroup> groups_;    // per cluster

  /// Calibrated gate levels per cluster, one per group variant.
  struct GateThresholds {
    double in_cluster = 1.0;
    double out_of_cluster = 1.0;
  };
  std::vector<GateThresholds> gates_;
  /// Calibrated ratio gate (see DetectorOptions::ratio_gate).
  double ratio_gate_ = 0.5;
  /// Peeling acceptance thresholds, conditioned on the anchor: a
  /// num_cases x num_cases row-major matrix (empty unless
  /// max_outage_lines >= 2) where entry [c * num_cases + t] gates case
  /// c joining an outage set anchored on case t
  /// (DetectorOptions::peel_null_quantile of the spurious-drop null
  /// cell, plus peel_margin).
  std::vector<double> peel_tau_;

  /// Maps a node-index group to feature-coordinate indices (identity
  /// for single-channel features, {i, N+i} pairs for kBoth).
  PW_NO_ALLOC void GroupCoordinatesInto(const std::vector<size_t>& nodes,
                            std::vector<size_t>* coords) const;
  std::vector<size_t> GroupCoordinates(const std::vector<size_t>& nodes) const;

  /// Median scaled proximity of each node over normal calibration
  /// samples, per group variant. Detection-group compositions differ
  /// across clusters, so raw proximities are not comparable between
  /// nodes; scores are reported relative to these baselines.
  linalg::Vector node_baseline_in_;
  linalg::Vector node_baseline_out_;

  ProximityEngine engine_;
};

}  // namespace phasorwatch::detect

#endif  // PHASORWATCH_DETECT_DETECTOR_H_
