#!/bin/sh
# Full-scale reproduction runs; results recorded in EXPERIMENTS.md.
# full_report covers Figs. 5/7/8/9/10 on all four systems with shared
# training; fig4 and the ablations retrain per variant, so they run on
# the systems where that is affordable.
set -e
cd "$(dirname "$0")/.."
echo "=== full_report ==="
./build/tools/full_report > results/full_report.txt 2>results/full_report.log
for b in fig4_detection_groups ablation_scaling ablation_baselines \
         ablation_imputation; do
  echo "=== $b (quick systems) ==="
  ./build/bench/$b > results/${b}_quick.txt 2>/dev/null
done
